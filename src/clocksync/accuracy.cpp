#include "clocksync/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "sim/rng.hpp"
#include "util/vec.hpp"

namespace hcs::clocksync {

std::vector<int> sample_clients(int nprocs, int p_ref, double fraction, std::uint64_t seed) {
  std::vector<int> all;
  all.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    if (r != p_ref) all.push_back(r);
  }
  if (fraction >= 1.0 || all.empty()) return all;
  const auto want = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fraction * static_cast<double>(all.size()))));
  // Deterministic partial Fisher-Yates, then restore ascending order so the
  // measurement loop visits clients in a fixed order on every rank.
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng.uniform_index(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(want);
  std::sort(all.begin(), all.end());
  return all;
}

sim::Task<AccuracyResult> check_clock_accuracy(simmpi::Comm& comm, vclock::Clock& g_clk,
                                               OffsetAlgorithm& oalg, double wait_time,
                                               std::vector<int> clients, int p_ref) {
  if (wait_time < 0) throw std::invalid_argument("check_clock_accuracy: negative wait");
  const int me = comm.rank();
  AccuracyResult result;
  result.clients = clients;

  const bool i_am_sampled_client =
      me != p_ref && std::binary_search(clients.begin(), clients.end(), me);

  if (me == p_ref) {
    result.offsets_t0.reserve(clients.size());
    result.offsets_t1.reserve(clients.size());
    for (int client : clients) {
      if (comm.peer_status(client) == simmpi::PeerStatus::kDead) continue;
      (void)co_await oalg.measure_offset(comm, g_clk, p_ref, client);
    }
    co_await comm.sim().delay(wait_time);  // busy wait on the global clock
    for (int client : clients) {
      if (comm.peer_status(client) == simmpi::PeerStatus::kDead) continue;
      (void)co_await oalg.measure_offset(comm, g_clk, p_ref, client);
    }
  } else if (i_am_sampled_client) {
    const ClockOffset o0 = co_await oalg.measure_offset(comm, g_clk, p_ref, me);
    const ClockOffset o1 = co_await oalg.measure_offset(comm, g_clk, p_ref, me);
    // Report both measurements to the reference.
    co_await comm.send(p_ref, 7201, util::vec(o0.offset, o1.offset));
    co_return result;
  } else {
    co_return result;
  }

  // Collect the client-side estimates: the offset algorithms produce their
  // result on the client, so the reference gathers them explicitly.
  for (int client : clients) {
    // A client that died (or whose link was cut) before reporting simply
    // contributes nothing; max_abs covers the reachable quorum.
    std::optional<simmpi::Message> msg = co_await comm.recv_ft(client, 7201);
    if (!msg || msg->data.size() < 2) continue;
    result.offsets_t0.push_back(msg->data.at(0));
    result.offsets_t1.push_back(msg->data.at(1));
  }
  for (double v : result.offsets_t0) result.max_abs_t0 = std::max(result.max_abs_t0, std::abs(v));
  for (double v : result.offsets_t1) result.max_abs_t1 = std::max(result.max_abs_t1, std::abs(v));
  co_return result;
}

}  // namespace hcs::clocksync
