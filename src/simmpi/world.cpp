#include "simmpi/world.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "simmpi/comm.hpp"

namespace hcs::simmpi {

// ---------------------------------------------------------------- RankCtx --

RankCtx::RankCtx(World& world, int rank)
    : world_(&world), rank_(rank), comm_world_(std::make_unique<Comm>(Comm::world_comm(world, rank))) {}

RankCtx::~RankCtx() = default;

vclock::ClockPtr RankCtx::base_clock() const { return world_->base_clock(rank_); }

sim::Simulation& RankCtx::sim() const { return world_->sim(); }

// ------------------------------------------------------------------ World --

World::World(topology::MachineConfig machine, std::uint64_t seed, fault::FaultPlan fault_plan)
    : machine_(std::move(machine)),
      sim_(seed),
      network_(machine_.topo, machine_.net, seed ^ 0x9e3779b97f4a7c15ULL) {
  const int sources = machine_.topo.num_time_sources();
  hw_clocks_.reserve(static_cast<std::size_t>(sources));
  std::uint64_t sm = seed ^ 0xd1b54a32d192ed03ULL;
  for (int s = 0; s < sources; ++s) {
    hw_clocks_.push_back(
        std::make_shared<vclock::HardwareClock>(sim_, machine_.clocks, sim::splitmix64(sm)));
  }
  mailboxes_.resize(static_cast<std::size_t>(size()));
  time_source_.sim = &sim_;
  if (trace::Tracer* tracer = trace::active_tracer()) {
    tracer->set_time_source(&time_source_, trace::TimeSourceKind::kSimTime);
  }
  if (trace::MetricsRegistry* m = trace::active_metrics()) {
    rtt_metric_ = &m->histogram("sync.rtt");
    pingpong_counter_ = &m->counter("sync.pingpongs");
    burst_retry_metric_ = &m->histogram("sync.burst_retries", trace::MetricUnit::kNone);
    lost_exchange_metric_ = &m->counter("sync.exchanges_lost");
    dup_absorbed_metric_ = &m->counter("fault.net.dup_absorbed");
  }
  if (!fault_plan.empty()) {
    // The injector's streams derive from the World seed (plus the plan's own
    // seed, mixed in by the injector), never from the network/clock RNGs:
    // fault decisions cannot perturb the fault-free random sequences.
    fault_ = std::make_unique<fault::FaultInjector>(fault_plan, seed ^ 0xa0761d6478bd642fULL,
                                                    size());
    network_.set_fault_injector(fault_.get());
    seq_tracking_ = fault_->net_active();
    if (seq_tracking_) {
      send_seq_.assign(static_cast<std::size_t>(size()) * static_cast<std::size_t>(size()), 0);
    }
    for (const fault::ClockFault& cf : fault_->clock_faults()) {
      // A clock fault targets the rank's time source; co-located ranks that
      // share the source are affected together, as on a real node.
      auto& hw = hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(cf.rank))];
      if (cf.kind == fault::FaultKind::kClockStep) {
        hw->inject_step(cf.at, cf.delta);
      } else {
        hw->inject_frequency_jump(cf.at, cf.delta);
      }
    }
  }
}

World::~World() {
  trace::Tracer* tracer = trace::active_tracer();
  if (tracer && tracer->time_source() == &time_source_) tracer->set_time_source(nullptr);
}

vclock::ClockPtr World::base_clock(int rank) const {
  return hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(rank))];
}

RankCtx& World::ctx(int rank) {
  if (ctxs_.empty()) {
    ctxs_.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) ctxs_.push_back(std::make_unique<RankCtx>(*this, r));
  }
  return *ctxs_[static_cast<std::size_t>(rank)];
}

void World::launch(const RankFn& fn) {
  for (int r = 0; r < size(); ++r) sim_.spawn(fn(ctx(r)));
}

void World::run(std::uint64_t max_events) {
  sim_.run(max_events);
  if (sim_.processes_finished() != sim_.processes_spawned()) {
    throw std::runtime_error(
        "World::run: deadlock — " +
        std::to_string(sim_.processes_spawned() - sim_.processes_finished()) +
        " of " + std::to_string(sim_.processes_spawned()) + " processes still blocked");
  }
}

void World::run_all(const RankFn& fn, std::uint64_t max_events) {
  launch(fn);
  run(max_events);
}

// -------------------------------------------------------------------- p2p --

namespace {
sim::Task<void> deliver_later(World& world, sim::Time arrive, int dst, Message msg) {
  co_await world.sim().delay(arrive - world.sim().now());
  world.deliver_now(dst, std::move(msg));
}
}  // namespace

// Hands one message to the network: fault evaluation (drops absorbed by the
// network's bounded retransmission), pause-window translation at both
// endpoints, channel sequencing, and the optional duplicate copy.  Shared by
// p2p_send and p2p_isend; identical to the pre-fault path when no injector
// is attached.
void World::dispatch_message(int src, int dst, std::vector<double> data, std::int64_t bytes,
                             std::int64_t tag, sim::Time ready) {
  if (fault_) ready = fault_->release_time(src, ready);
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.data = std::move(data);
  msg.bytes = bytes;
  msg.sent_at = ready;
  if (seq_tracking_) {
    msg.seq = send_seq_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size()) +
                        static_cast<std::size_t>(dst)]++;
  }
  DeliveryFaults df;
  sim::Time arrive = network_.deliver_time(src, dst, bytes, ready, seq_tracking_ ? &df : nullptr);
  if (fault_) arrive = fault_->release_time(dst, arrive);
  msg.arrived_at = arrive;
  if (df.duplicate) {
    // The second copy rides the network fault-blind (no recursive faults)
    // and keeps the original sequence number, so the receiving mailbox
    // absorbs whichever copy arrives second.
    Message copy = msg;
    sim::Time dup_arrive = network_.deliver_time(src, dst, bytes, ready);
    if (fault_) dup_arrive = fault_->release_time(dst, dup_arrive);
    copy.arrived_at = dup_arrive;
    sim_.spawn(deliver_later(*this, dup_arrive, dst, std::move(copy)));
  }
  sim_.spawn(deliver_later(*this, arrive, dst, std::move(msg)));
}

sim::Task<void> World::p2p_send(int src, int dst, std::int64_t tag, std::vector<double> data,
                                std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_send: bad destination rank");
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  co_await sim_.delay(network_.send_overhead());
  dispatch_message(src, dst, std::move(data), bytes, tag, sim_.now());
}

void World::deliver_now(int dst, Message msg) {
  if (!seq_tracking_) {
    match_or_enqueue(dst, std::move(msg));
    return;
  }
  // Channel repair: absorb duplicates and hold back out-of-order messages so
  // the MPI layer keeps its per-channel FIFO guarantee under fault plans
  // that can reorder deliveries (tested in tests/fault/).
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  if (mb.expected_seq.empty()) mb.expected_seq.assign(static_cast<std::size_t>(size()), 0);
  std::uint64_t& expected = mb.expected_seq[static_cast<std::size_t>(msg.src)];
  if (msg.seq < expected) {
    if (dup_absorbed_metric_) dup_absorbed_metric_->inc();
    return;
  }
  if (msg.seq > expected) {
    if (!mb.held.emplace(std::make_pair(msg.src, msg.seq), std::move(msg)).second) {
      if (dup_absorbed_metric_) dup_absorbed_metric_->inc();
    }
    return;
  }
  const int src = msg.src;
  match_or_enqueue(dst, std::move(msg));
  ++expected;
  for (auto it = mb.held.find({src, expected}); it != mb.held.end();
       it = mb.held.find({src, expected})) {
    Message next = std::move(it->second);
    mb.held.erase(it);
    match_or_enqueue(dst, std::move(next));
    ++expected;
  }
}

void World::match_or_enqueue(int dst, Message msg) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  const auto it = std::find_if(mb.posted.begin(), mb.posted.end(), [&](const RecvRequest& r) {
    return r->src == msg.src && r->tag == msg.tag;
  });
  if (it == mb.posted.end()) {
    mb.unexpected.push_back(std::move(msg));
    return;
  }
  const RecvRequest request = *it;
  mb.posted.erase(it);
  request->msg = std::move(msg);
  request->complete = true;
  if (request->waiter) {
    sim_.schedule_at(sim_.now(), request->waiter);
    request->waiter = nullptr;
  }
}

RecvRequest World::p2p_irecv(int me, int src, std::int64_t tag) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(me)];
  auto request = std::make_shared<RecvState>();
  request->src = src;
  request->tag = tag;
  const auto it = std::find_if(mb.unexpected.begin(), mb.unexpected.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
  if (it != mb.unexpected.end()) {
    request->msg = std::move(*it);
    mb.unexpected.erase(it);
    request->complete = true;
    return request;
  }
  mb.posted.push_back(request);
  return request;
}

sim::Task<Message> World::await_recv(RecvRequest request) {
  if (!request->complete) {
    struct Suspend {
      RecvState* state;
      bool await_ready() const noexcept { return state->complete; }
      void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
      void await_resume() const noexcept {}
    };
    // NOTE: named awaiter on purpose (GCC 12 temporary-awaiter bug).
    Suspend suspend{request.get()};
    co_await suspend;
  }
  co_await sim_.delay(network_.recv_overhead());
  co_return std::move(request->msg);
}

sim::Task<Message> World::p2p_recv(int me, int src, std::int64_t tag) {
  co_return co_await await_recv(p2p_irecv(me, src, tag));
}

SendRequest World::p2p_isend(int src, int dst, std::int64_t tag, std::vector<double> data,
                             std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_isend: bad destination rank");
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  auto request = std::make_shared<SendState>();
  // The NIC takes over immediately; the rank's own overhead marks when the
  // send buffer is reusable (MPI_Wait on the isend).
  request->complete_at = sim_.now() + network_.send_overhead();
  dispatch_message(src, dst, std::move(data), bytes, tag, request->complete_at);
  return request;
}

sim::Task<void> World::await_send(SendRequest request) {
  const sim::Time now = sim_.now();
  if (request->complete_at > now) co_await sim_.delay(request->complete_at - now);
}

// ------------------------------------------------------------------ burst --

struct World::BurstState {
  int client_rank = -1;
  int ref_rank = -1;
  vclock::Clock* client_clock = nullptr;
  vclock::Clock* ref_clock = nullptr;
  sim::Time client_ready = 0.0;
  sim::Time ref_ready = 0.0;
  bool first_is_client = false;
  std::coroutine_handle<> first_handle = nullptr;
  int nexchanges = 0;
  std::int64_t bytes = 0;
  BurstResult result;
  sim::Time client_done = 0.0;
  sim::Time ref_done = 0.0;
};

std::uint64_t World::pair_key(int a, int b, int world_size) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * static_cast<std::uint64_t>(world_size) + hi;
}

void World::synthesize_burst(BurstState& st) {
  // Attempts per exchange under an active fault plan: 1 original +
  // (kMaxPingAttempts - 1) retries; an exchange still unanswered after that
  // is abandoned and reported via BurstResult::lost (the sync layer marks
  // the rank degraded rather than hanging).
  constexpr int kMaxPingAttempts = 3;
  constexpr double kPingTimeoutFactor = 10.0;  // of the expected round-trip time

  const double o_s = network_.send_overhead();
  const double o_r = network_.recv_overhead();
  sim::Time tc = st.client_ready;  // client's process-time cursor
  sim::Time tr = st.ref_ready;     // reference's process-time cursor
  const bool faulty = fault_ && fault_->net_active();
  const bool pausing = fault_ && fault_->pause_active();
  const LinkLevel level = network_.classify(st.client_rank, st.ref_rank);
  const double timeout =
      kPingTimeoutFactor * (2.0 * network_.expected_delay(level, st.bytes) + 2.0 * (o_s + o_r));
  st.result.requested = st.nexchanges;
  st.result.samples.reserve(static_cast<std::size_t>(st.nexchanges));
  for (int i = 0; i < st.nexchanges; ++i) {
    for (int attempt = 0;; ++attempt) {
      if (pausing) tc = fault_->release_time(st.client_rank, tc);
      const sim::Time attempt_start = tc;
      // The timeout guards against message loss, not partner lateness: the
      // reference may legitimately enter the burst long after the client
      // (Alg. 6 sleeps wait_time between rounds; serial schedules like JK
      // make client j wait for j-1 predecessors), so the deadline only
      // starts once both peers could be exchanging messages.
      const sim::Time deadline = std::max(attempt_start, st.ref_ready) + timeout;
      PingSample s;
      s.client_send = st.client_clock->at(tc);
      fault::NetFaultDecision ping_fd;
      const sim::Time arrive_ref = network_.deliver_time_uncontended(
          st.client_rank, st.ref_rank, st.bytes, tc + o_s, faulty ? &ping_fd : nullptr);
      bool timed_out = ping_fd.drop;
      if (!timed_out) {
        sim::Time stamp_time = std::max(arrive_ref, tr) + o_r;
        if (pausing) stamp_time = fault_->release_time(st.ref_rank, stamp_time);
        s.ref_reply = st.ref_clock->at(stamp_time);
        const sim::Time reply_depart = stamp_time + o_s;
        tr = reply_depart;  // the reference served this ping whether or not the pong survives
        fault::NetFaultDecision pong_fd;
        const sim::Time arrive_client = network_.deliver_time_uncontended(
            st.ref_rank, st.client_rank, st.bytes, reply_depart, faulty ? &pong_fd : nullptr);
        // `faulty` gate: fault-free this branch must be taken unconditionally
        // so the synthesized schedule stays bit-identical to the seed model.
        if (pong_fd.drop || (faulty && arrive_client + o_r > deadline)) {
          timed_out = true;  // pong lost, or it arrived after the client gave up
        } else {
          const sim::Time recv_time = arrive_client + o_r;
          s.client_recv = st.client_clock->at(recv_time);
          st.result.samples.push_back(s);
          if (rtt_metric_) rtt_metric_->observe(recv_time - attempt_start);
          tc = recv_time;
          break;
        }
      }
      tc = deadline;  // client resumes at its timeout deadline
      if (attempt + 1 >= kMaxPingAttempts) {
        ++st.result.lost;
        break;
      }
      ++st.result.retries;
    }
  }
  st.client_done = tc;
  st.ref_done = tr;
  if (pingpong_counter_) pingpong_counter_->inc(static_cast<std::uint64_t>(st.nexchanges));
  if (faulty) {
    if (burst_retry_metric_) burst_retry_metric_->observe(st.result.retries);
    if (lost_exchange_metric_ && st.result.lost > 0) {
      lost_exchange_metric_->inc(static_cast<std::uint64_t>(st.result.lost));
    }
  }
  if (trace::Tracer* tracer = trace::active_tracer()) {
    // Explicit timestamps: the burst is synthesized, so "now" would misplace
    // it.  This span is where HCA3 spends its RTT budget.
    tracer->record_complete(st.client_rank, trace::Category::kNet, "pingpong_burst",
                            st.client_ready, st.client_done - st.client_ready, st.nexchanges);
  }
}

sim::Task<BurstResult> World::pingpong_burst(int me, int partner, bool i_am_client,
                                             vclock::Clock& my_clock, int nexchanges,
                                             std::int64_t bytes) {
  if (nexchanges < 1) throw std::invalid_argument("pingpong_burst: nexchanges must be >= 1");
  if (me == partner) throw std::invalid_argument("pingpong_burst: self ping-pong");
  const std::uint64_t key = pair_key(me, partner, size());
  const auto it = bursts_.find(key);

  // NOTE: awaiters with non-trivially-destructible members must be named
  // locals, never co_await'ed as brace-init temporaries: GCC 12 destroys such
  // temporaries twice at the resume point (sibling of the "array used as
  // initializer" bug; see util/vec.hpp).
  struct SuspendForPartner {
    std::shared_ptr<BurstState> st;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { st->first_handle = h; }
    void await_resume() const noexcept {}
  };
  struct ResumeAt {
    sim::Simulation* sim;
    sim::Time when;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_at(when, h);
    }
    void await_resume() const noexcept {}
  };

  if (it == bursts_.end()) {
    auto st = std::make_shared<BurstState>();
    st->nexchanges = nexchanges;
    st->bytes = bytes;
    st->first_is_client = i_am_client;
    if (i_am_client) {
      st->client_rank = me;
      st->client_clock = &my_clock;
      st->client_ready = sim_.now();
    } else {
      st->ref_rank = me;
      st->ref_clock = &my_clock;
      st->ref_ready = sim_.now();
    }
    bursts_[key] = st;
    SuspendForPartner wait_for_partner{st};
    co_await wait_for_partner;
    co_return st->result;
  }

  auto st = it->second;
  bursts_.erase(it);
  if (st->nexchanges != nexchanges || st->first_is_client == i_am_client) {
    throw std::logic_error("pingpong_burst: mismatched burst call between partners");
  }
  if (i_am_client) {
    st->client_rank = me;
    st->client_clock = &my_clock;
    st->client_ready = sim_.now();
  } else {
    st->ref_rank = me;
    st->ref_clock = &my_clock;
    st->ref_ready = sim_.now();
  }
  synthesize_burst(*st);
  sim_.schedule_at(st->first_is_client ? st->client_done : st->ref_done, st->first_handle);
  ResumeAt resume_at{&sim_, i_am_client ? st->client_done : st->ref_done};
  co_await resume_at;
  co_return st->result;
}

}  // namespace hcs::simmpi
