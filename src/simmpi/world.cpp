#include "simmpi/world.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "replay/feed.hpp"
#include "replay/record.hpp"
#include "simmpi/comm.hpp"

namespace hcs::simmpi {

namespace {
std::atomic<int> g_default_shards{1};
}  // namespace

void set_default_shards(int shards) noexcept {
  g_default_shards.store(shards < 1 ? 1 : shards, std::memory_order_relaxed);
}

int default_shards() noexcept { return g_default_shards.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------- RankCtx --

RankCtx::RankCtx(World& world, int rank)
    : world_(&world), rank_(rank), comm_world_(std::make_unique<Comm>(Comm::world_comm(world, rank))) {}

RankCtx::~RankCtx() = default;

void RankCtx::reset_comm() {
  comm_world_ = std::make_unique<Comm>(Comm::world_comm(*world_, rank_));
}

vclock::ClockPtr RankCtx::base_clock() const { return world_->base_clock(rank_); }

sim::Simulation& RankCtx::sim() const { return world_->sim_of(rank_); }

// ------------------------------------------------------------------ World --

World::World(topology::MachineConfig machine, std::uint64_t seed, fault::FaultPlan fault_plan,
             int shards)
    : machine_(std::move(machine)),
      network_(machine_.topo, machine_.net, seed ^ 0x9e3779b97f4a7c15ULL) {
  const int nodes = machine_.topo.nodes();
  if (shards <= 0) shards = default_shards();
  nshards_ = std::clamp(shards, 1, nodes);
  lookahead_ = network_.min_inter_node_latency();

  // Contiguous node ranges per shard; shards never split a node, so every
  // intra-node structure (mailboxes, NIC state, hardware clocks, the burst
  // fast path) stays confined to one shard's thread.
  node_of_rank_.resize(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    node_of_rank_[static_cast<std::size_t>(r)] = machine_.topo.locate(r).node;
  }
  shard_of_node_.resize(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    shard_of_node_[static_cast<std::size_t>(n)] =
        static_cast<int>((static_cast<std::int64_t>(n) * nshards_) / nodes);
  }

  // Shard 0 keeps the World seed itself so --shards 1 reproduces the
  // engine's historical ctx.sim().rng() streams; the rest chain off it.
  // (ctx.sim().rng() draws are the one non-invariant under resharding —
  // simulation results never consume them; see docs/parallel-simulation.md.)
  sims_.reserve(static_cast<std::size_t>(nshards_));
  std::uint64_t shard_sm = seed ^ 0x2545f4914f6cdd1dULL;
  for (int s = 0; s < nshards_; ++s) {
    sims_.push_back(std::make_unique<sim::Simulation>(s == 0 ? seed : sim::splitmix64(shard_sm)));
  }
  shard_states_.resize(static_cast<std::size_t>(nshards_));

  // One model bank per shard: sync algorithms append learned models to their
  // own shard's bank, so appends are single-threaded and append order is
  // deterministic (row indices are unobservable either way).
  model_banks_.reserve(static_cast<std::size_t>(nshards_));
  for (int s = 0; s < nshards_; ++s) {
    model_banks_.push_back(std::make_shared<vclock::LinearModelBank>());
  }

  // Hardware clocks: seed chain unchanged from the unsharded engine (clock
  // paths must not depend on the shard count).  Each clock reads "now" from
  // the simulation of the shard owning its ranks; a time source is at most
  // node-wide (topology.cpp), so it can never span shards.
  const int sources = machine_.topo.num_time_sources();
  std::vector<int> source_shard(static_cast<std::size_t>(sources), 0);
  for (int r = size() - 1; r >= 0; --r) {
    source_shard[static_cast<std::size_t>(machine_.topo.time_source_id(r))] = shard_of_rank(r);
  }
  hw_clocks_.reserve(static_cast<std::size_t>(sources));
  std::uint64_t sm = seed ^ 0xd1b54a32d192ed03ULL;
  for (int s = 0; s < sources; ++s) {
    hw_clocks_.push_back(std::make_shared<vclock::HardwareClock>(
        *sims_[static_cast<std::size_t>(source_shard[static_cast<std::size_t>(s)])],
        machine_.clocks, sim::splitmix64(sm)));
  }
  mailboxes_.resize(static_cast<std::size_t>(size()));

  // Observability: the parent tracer/registry stay bound to the constructing
  // thread; sharded runs record into per-shard buffers that ~World absorbs
  // in shard-index order (the record paths are not thread-safe).
  parent_tracer_ = trace::active_tracer();
  parent_metrics_ = trace::active_metrics();

  // Record/replay: a Recorder installed on the constructing thread gets one
  // section per World, keyed by everything needed to rebuild an identical
  // World for replay (docs/record-replay.md).  The section's per-rank
  // buffers are sized up front, so recording appends stay confined to each
  // rank's own shard thread.
  if (replay::Recorder* recorder = replay::active_recorder()) {
    replay::WorldInfo info;
    info.seed = seed;
    info.nranks = size();
    info.fault_seed = fault_plan.seed();
    info.machine = machine_.describe();
    if (!fault_plan.empty()) info.fault_plan = fault_plan.describe();
    record_section_ = &recorder->begin_world(std::move(info));
  }
  time_source_.sim = sims_[0].get();
  if (parent_tracer_) {
    parent_tracer_->set_time_source(&time_source_, trace::TimeSourceKind::kSimTime);
  }
  std::vector<trace::MetricsRegistry*> regs(static_cast<std::size_t>(nshards_), nullptr);
  if (nshards_ == 1) {
    regs[0] = parent_metrics_;
  } else {
    for (int s = 0; s < nshards_; ++s) {
      if (parent_tracer_) {
        auto ts = std::make_unique<SimTimeSource>();
        ts->sim = sims_[static_cast<std::size_t>(s)].get();
        auto tracer = std::make_unique<trace::Tracer>(parent_tracer_->ring_capacity());
        tracer->set_time_source(ts.get(), trace::TimeSourceKind::kSimTime);
        shard_time_sources_.push_back(std::move(ts));
        shard_tracers_.push_back(std::move(tracer));
      }
      if (parent_metrics_) {
        shard_registries_.push_back(std::make_unique<trace::MetricsRegistry>());
        regs[static_cast<std::size_t>(s)] = shard_registries_.back().get();
      }
    }
  }
  world_metrics_.reserve(regs.size());
  for (trace::MetricsRegistry* r : regs) world_metrics_.push_back(resolve_metrics(r));
  if (nshards_ > 1) network_.bind_shards(regs);

  if (!fault_plan.empty()) {
    // The injector's streams derive from the World seed (plus the plan's own
    // seed, mixed in by the injector), never from the network/clock RNGs:
    // fault decisions cannot perturb the fault-free random sequences.
    fault_ = std::make_unique<fault::FaultInjector>(fault_plan, seed ^ 0xa0761d6478bd642fULL,
                                                    size());
    network_.set_fault_injector(fault_.get());
    if (nshards_ > 1) fault_->bind_shards(regs);
    seq_tracking_ = fault_->net_active();
    if (fault_->crash_active()) {
      detector_ = std::make_unique<FailureDetector>(*fault_, network_, size());
    }
    if (seq_tracking_) {
      send_seq_.assign(static_cast<std::size_t>(size()) * static_cast<std::size_t>(size()), 0);
    }
    for (const fault::ClockFault& cf : fault_->clock_faults()) {
      // A clock fault targets the rank's time source; co-located ranks that
      // share the source are affected together, as on a real node.
      auto& hw = hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(cf.rank))];
      if (cf.kind == fault::FaultKind::kClockStep) {
        hw->inject_step(cf.at, cf.delta);
      } else {
        hw->inject_frequency_jump(cf.at, cf.delta);
      }
    }
  }
}

World::~World() {
  // Fold per-shard observability into the parent exactly once, in shard
  // order: the resulting streams match what a 1-shard run records directly.
  if (parent_tracer_) {
    for (const auto& t : shard_tracers_) parent_tracer_->absorb(*t);
  }
  if (parent_metrics_) {
    for (const auto& r : shard_registries_) parent_metrics_->merge_from(*r);
  }
  trace::Tracer* tracer = trace::active_tracer();
  if (tracer && tracer->time_source() == &time_source_) tracer->set_time_source(nullptr);
}

World::WorldMetrics World::resolve_metrics(trace::MetricsRegistry* registry) {
  WorldMetrics out;
  if (!registry) return out;
  out.rtt = &registry->histogram("sync.rtt");
  out.pingpongs = &registry->counter("sync.pingpongs");
  out.burst_retries = &registry->histogram("sync.burst_retries", trace::MetricUnit::kNone);
  out.exchanges_lost = &registry->counter("sync.exchanges_lost");
  out.dup_absorbed = &registry->counter("fault.net.dup_absorbed");
  return out;
}

vclock::ClockPtr World::base_clock(int rank) const {
  return hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(rank))];
}

RankCtx& World::ctx(int rank) {
  if (ctxs_.empty()) {
    ctxs_.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) ctxs_.push_back(std::make_unique<RankCtx>(*this, r));
  }
  return *ctxs_[static_cast<std::size_t>(rank)];
}

namespace {
// Under the crash model a victim rank unwinds via RankCrashed at its next
// transport operation; the guard absorbs it so the process finishes cleanly
// (no deadlock report, no result) while real errors still propagate.
sim::Task<void> run_rank_guarded(World::RankFn fn, RankCtx& ctx) {
  try {
    co_await fn(ctx);
  } catch (const RankCrashed&) {
  }
}
}  // namespace

void World::launch(const RankFn& fn) {
  if (replay_feed_) {
    // Single-rank replay: only the target rank runs; every peer interaction
    // is answered from the recorded log instead of a simulated partner.
    if (fault_ && fault_->has_churn(replay_rank_)) {
      sim_of(replay_rank_).spawn(churn_supervisor(fn, ctx(replay_rank_)));
    } else if (detector_ != nullptr) {
      sim_of(replay_rank_).spawn(run_rank_guarded(fn, ctx(replay_rank_)));
    } else {
      sim_of(replay_rank_).spawn(fn(ctx(replay_rank_)));
    }
    return;
  }
  const bool guard = detector_ != nullptr;
  for (int r = 0; r < size(); ++r) {
    if (fault_ && fault_->has_churn(r)) {
      // Churning ranks run under a supervisor that restarts each scheduled
      // incarnation; pure-crash ranks keep the plain guarded path, so a
      // churn-free plan schedules exactly as before.
      sim_of(r).spawn(churn_supervisor(fn, ctx(r)));
    } else if (guard) {
      sim_of(r).spawn(run_rank_guarded(fn, ctx(r)));
    } else {
      sim_of(r).spawn(fn(ctx(r)));
    }
  }
}

void World::purge_mailbox(int rank) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(rank)];
  mb.unexpected.clear();
  mb.posted.clear();
  // Held-back out-of-order messages from the previous life are stale too.
  // expected_seq is deliberately kept: sender-side counters keep running
  // across the restart, so channel FIFO repair stays consistent.
  mb.held.clear();
}

// churn_supervisor lives in the record/replay section below (it needs the
// ReplayResume awaiter).

// ----------------------------------------------------------------- engine --

std::uint64_t World::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_processed();
  return total;
}

// One window-boundary step on the coordinating thread (workers parked):
// collect errors, drain cross-shard traffic, pick the next window.  Returns
// false when the run is over (all queues empty, or a fatal error).
bool World::serial_phase(std::uint64_t max_events) {
  for (int s = 0; s < nshards_; ++s) {
    if (auto error = sims_[static_cast<std::size_t>(s)]->take_error()) {
      if (!fatal_) fatal_ = error;
    }
  }
  if (fatal_) return false;
  try {
    drain_outboxes();
    drain_burst_halves();
  } catch (...) {
    fatal_ = std::current_exception();
    sim::set_current_shard(0);
    return false;
  }
  sim::Time first = sim::kTimeInfinity;
  for (const auto& s : sims_) {
    if (!s->idle() && s->next_event_time() < first) first = s->next_event_time();
  }
  if (first == sim::kTimeInfinity) return false;
  const std::uint64_t done = total_events();
  if (done >= max_events) {
    fatal_ = std::make_exception_ptr(
        std::runtime_error("Simulation::run: event budget exceeded (" +
                           std::to_string(max_events) + " events)"));
    return false;
  }
  // Each shard is capped at its own lifetime count plus the global remainder;
  // concurrent windows can overshoot by at most (shards - 1) * remainder,
  // and with one shard the cap is exactly max_events, like the old engine.
  const std::uint64_t remaining = max_events - done;
  shard_caps_.resize(static_cast<std::size_t>(nshards_));
  for (int s = 0; s < nshards_; ++s) {
    shard_caps_[static_cast<std::size_t>(s)] =
        sims_[static_cast<std::size_t>(s)]->events_processed() + remaining;
  }
  window_end_ = first + lookahead_;
  if (!(window_end_ > first)) {
    // Degenerate lookahead (zero inter-node latency): single-event windows.
    window_end_ = std::nextafter(first, sim::kTimeInfinity);
  }
  last_window_end_ = window_end_;
  return true;
}

void World::run(std::uint64_t max_events) {
  fatal_ = nullptr;
  sim::set_current_shard(0);
  const std::uint64_t events_before = total_events();
  if (nshards_ == 1) {
    while (serial_phase(max_events)) {
      sims_[0]->run_window(window_end_, shard_caps_[0]);
    }
  } else {
    std::barrier gate(static_cast<std::ptrdiff_t>(nshards_) + 1);
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nshards_));
    for (int s = 0; s < nshards_; ++s) {
      workers.emplace_back([this, s, &gate, &stop] {
        sim::set_current_shard(s);
        trace::ScopedTracer tracer_guard(shard_tracers_.empty()
                                             ? nullptr
                                             : shard_tracers_[static_cast<std::size_t>(s)].get());
        trace::ScopedMetrics metrics_guard(
            shard_registries_.empty() ? nullptr
                                      : shard_registries_[static_cast<std::size_t>(s)].get());
        for (;;) {
          gate.arrive_and_wait();
          if (stop.load(std::memory_order_acquire)) break;
          sims_[static_cast<std::size_t>(s)]->run_window(window_end_,
                                                         shard_caps_[static_cast<std::size_t>(s)]);
          gate.arrive_and_wait();
        }
      });
    }
    for (;;) {
      const bool go = serial_phase(max_events);
      if (!go) stop.store(true, std::memory_order_release);
      gate.arrive_and_wait();  // release workers: run a window, or exit
      if (!go) break;
      gate.arrive_and_wait();  // window complete everywhere
    }
    for (auto& w : workers) w.join();
  }
  if (fatal_) {
    auto error = fatal_;
    fatal_ = nullptr;
    std::rethrow_exception(error);
  }
  std::size_t spawned = 0, finished = 0;
  sim::Time virtual_now = 0.0;
  for (const auto& s : sims_) {
    spawned += s->processes_spawned();
    finished += s->processes_finished();
    virtual_now = std::max(virtual_now, s->now());
  }
  if (finished != spawned) {
    throw std::runtime_error("World::run: deadlock — " + std::to_string(spawned - finished) +
                             " of " + std::to_string(spawned) + " processes still blocked");
  }
  HCS_METRIC_ADD("sim.events_processed", total_events() - events_before);
  HCS_METRIC_SET("sim.virtual_time_s", virtual_now);
  HCS_METRIC_SET("sim.processes_spawned", static_cast<double>(spawned));
}

void World::run_all(const RankFn& fn, std::uint64_t max_events) {
  launch(fn);
  run(max_events);
}

// -------------------------------------------------------------------- p2p --

namespace {
sim::Task<void> deliver_later(World& world, sim::Simulation& s, sim::Time arrive, int dst,
                              Message msg) {
  co_await s.delay(arrive - s.now());
  world.deliver_now(dst, std::move(msg));
}
}  // namespace

void World::push_ingress(int src, int dst, sim::Time depart_ready, sim::Time port_time,
                         Message msg) {
  ShardState& ss = shard_states_[static_cast<std::size_t>(shard_of_rank(src))];
  IngressRecord record;
  record.src = src;
  record.dst = dst;
  record.depart_ready = depart_ready;
  record.port_time = port_time;
  record.order = ss.outbox_seq++;
  record.msg = std::move(msg);
  ss.outbox.push_back(std::move(record));
}

// Window-boundary delivery of all parked inter-node messages, in a merge
// order that no shard layout can change: (port arrival, src, dst, sender
// push index).  Ingress NIC admission therefore evolves identically for any
// shard count — the crux of the determinism guarantee.
void World::drain_outboxes() {
  std::vector<IngressRecord> records;
  for (auto& ss : shard_states_) {
    if (records.empty()) {
      records = std::move(ss.outbox);
      ss.outbox.clear();
    } else {
      for (auto& r : ss.outbox) records.push_back(std::move(r));
      ss.outbox.clear();
    }
  }
  if (records.empty()) return;
  std::sort(records.begin(), records.end(), [](const IngressRecord& a, const IngressRecord& b) {
    if (a.port_time != b.port_time) return a.port_time < b.port_time;
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.order < b.order;
  });
  for (IngressRecord& r : records) {
    const int dshard = shard_of_rank(r.dst);
    sim::set_current_shard(dshard);
    sim::Time arrive = network_.ingress_admit(r.dst, r.msg.bytes, r.port_time, r.depart_ready);
    if (fault_) arrive = fault_->release_time(r.dst, arrive);
    r.msg.arrived_at = arrive;
    if (!detector_ || crash_delivered(r.src, r.dst, r.msg.sent_at, arrive)) {
      sim::Simulation& dst_sim = *sims_[static_cast<std::size_t>(dshard)];
      dst_sim.spawn(deliver_later(*this, dst_sim, arrive, r.dst, std::move(r.msg)));
    } else {
      // The crash rule trumps the reliable transport's "final retransmission
      // always lands": a dead endpoint or severed link loses the message for
      // good, in-flight copies included.
      fault_->count_crash_drop();
    }
  }
  sim::set_current_shard(0);
}

// Hands one message to the network: fault evaluation (drops absorbed by the
// network's bounded retransmission), pause-window translation at both
// endpoints, channel sequencing, and the optional duplicate copy.  Shared by
// p2p_send and p2p_isend.  Intra-node messages deliver directly inside the
// sender's shard; inter-node messages pay egress + wire now (sender-side
// state only) and park in the outbox for ingress at the window boundary —
// at every shard count, so the timeline never depends on the shard layout.
void World::dispatch_message(int src, int dst, std::vector<double> data, std::int64_t bytes,
                             std::int64_t tag, sim::Time ready) {
  if (fault_) ready = fault_->release_time(src, ready);
  if (replay_feed_) {
    // Replay: the message has no receiver to reach; verify the send against
    // the log (same spot record mode logs it, after pause translation) and
    // drop it.
    replay_verify_send(dst, tag, bytes, data, ready);
    return;
  }
  if (record_section_ != nullptr) {
    replay::Event ev;
    ev.kind = replay::EventKind::kSend;
    ev.peer = dst;
    ev.tag = tag;
    ev.bytes = bytes;
    ev.time = ready;
    ev.digest = replay::payload_digest(data);
    record_section_->append(src, std::move(ev));
  }
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.data = std::move(data);
  msg.bytes = bytes;
  msg.sent_at = ready;
  if (fault_ && fault_->churn_active()) msg.view = fault_->membership_epoch(ready);
  if (seq_tracking_) {
    msg.seq = send_seq_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size()) +
                        static_cast<std::size_t>(dst)]++;
  }
  DeliveryFaults df;
  if (node_of_rank_[static_cast<std::size_t>(src)] != node_of_rank_[static_cast<std::size_t>(dst)]) {
    const sim::Time port = network_.transit_time(src, dst, bytes, ready,
                                                 seq_tracking_ ? &df : nullptr);
    if (df.duplicate) {
      // The second copy rides the network fault-blind (no recursive faults)
      // and keeps the original sequence number, so the receiving mailbox
      // absorbs whichever copy arrives second.
      Message copy = msg;
      const sim::Time dup_port = network_.transit_time(src, dst, bytes, ready);
      push_ingress(src, dst, ready, dup_port, std::move(copy));
    }
    push_ingress(src, dst, ready, port, std::move(msg));
    return;
  }
  sim::Simulation& s = sim_of(dst);  // same shard as src: shards don't split nodes
  sim::Time arrive = network_.deliver_time(src, dst, bytes, ready, seq_tracking_ ? &df : nullptr);
  if (fault_) arrive = fault_->release_time(dst, arrive);
  msg.arrived_at = arrive;
  if (df.duplicate) {
    Message copy = msg;
    sim::Time dup_arrive = network_.deliver_time(src, dst, bytes, ready);
    if (fault_) dup_arrive = fault_->release_time(dst, dup_arrive);
    copy.arrived_at = dup_arrive;
    if (!detector_ || crash_delivered(src, dst, ready, dup_arrive)) {
      s.spawn(deliver_later(*this, s, dup_arrive, dst, std::move(copy)));
    } else {
      fault_->count_crash_drop();
    }
  }
  if (!detector_ || crash_delivered(src, dst, ready, arrive)) {
    s.spawn(deliver_later(*this, s, arrive, dst, std::move(msg)));
  } else {
    fault_->count_crash_drop();
  }
}

bool World::crash_delivered(int src, int dst, sim::Time send, sim::Time arrive) const noexcept {
  if (fault_->is_down(src, arrive) || fault_->is_down(dst, arrive) ||
      arrive >= fault_->link_down_time(src, dst)) {
    return false;
  }
  // Stale-view rejection: under churn a message may not cross an endpoint
  // restart in flight — both ends must be in the same incarnation at send
  // and at arrival.  With no churn every incarnation is 0, so pure crash
  // plans keep the exact historical rule (arrive before both crash times).
  if (fault_->churn_active()) {
    if (fault_->incarnation(src, send) != fault_->incarnation(src, arrive)) return false;
    if (fault_->incarnation(dst, send) != fault_->incarnation(dst, arrive)) return false;
  }
  return true;
}

sim::Task<void> World::p2p_send(int src, int dst, std::int64_t tag, std::vector<double> data,
                                std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_send: bad destination rank");
  check_crash(src);
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  sim::Simulation& s = sim_of(src);
  co_await s.delay(network_.send_overhead());
  check_crash(src);  // a crash inside the send overhead kills the message too
  dispatch_message(src, dst, std::move(data), bytes, tag, s.now());
}

void World::deliver_now(int dst, Message msg) {
  if (!seq_tracking_) {
    match_or_enqueue(dst, std::move(msg));
    return;
  }
  // Channel repair: absorb duplicates and hold back out-of-order messages so
  // the MPI layer keeps its per-channel FIFO guarantee under fault plans
  // that can reorder deliveries (tested in tests/fault/).
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  if (mb.expected_seq.empty()) mb.expected_seq.assign(static_cast<std::size_t>(size()), 0);
  std::uint64_t& expected = mb.expected_seq[static_cast<std::size_t>(msg.src)];
  if (msg.seq < expected) {
    if (trace::Counter* m = my_metrics().dup_absorbed) m->inc();
    return;
  }
  if (msg.seq > expected) {
    if (!mb.held.emplace(std::make_pair(msg.src, msg.seq), std::move(msg)).second) {
      if (trace::Counter* m = my_metrics().dup_absorbed) m->inc();
    }
    return;
  }
  const int src = msg.src;
  match_or_enqueue(dst, std::move(msg));
  ++expected;
  for (auto it = mb.held.find({src, expected}); it != mb.held.end();
       it = mb.held.find({src, expected})) {
    Message next = std::move(it->second);
    mb.held.erase(it);
    match_or_enqueue(dst, std::move(next));
    ++expected;
  }
}

void World::match_or_enqueue(int dst, Message msg) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  const auto it = std::find_if(mb.posted.begin(), mb.posted.end(), [&](const RecvRequest& r) {
    return r->src == msg.src && r->tag == msg.tag;
  });
  if (it == mb.posted.end()) {
    mb.unexpected.push_back(std::move(msg));
    return;
  }
  const RecvRequest request = *it;
  mb.posted.erase(it);
  request->msg = std::move(msg);
  request->complete = true;
  if (request->waiter) {
    sim::Simulation& s = sim_of(dst);
    s.schedule_at(s.now(), request->waiter);
    request->waiter = nullptr;
  }
}

RecvRequest World::p2p_irecv(int me, int src, std::int64_t tag) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(me)];
  auto request = std::make_shared<RecvState>();
  request->src = src;
  request->tag = tag;
  request->owner = me;
  const auto it = std::find_if(mb.unexpected.begin(), mb.unexpected.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
  if (it != mb.unexpected.end()) {
    request->msg = std::move(*it);
    mb.unexpected.erase(it);
    request->complete = true;
    return request;
  }
  mb.posted.push_back(request);
  return request;
}

void World::cancel_recv(const RecvRequest& request) {
  if (request->owner < 0) return;
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(request->owner)];
  const auto it = std::find(mb.posted.begin(), mb.posted.end(), request);
  if (it != mb.posted.end()) mb.posted.erase(it);
}

// Resumes a blocked receive when the crash model resolves it without a
// message: the owner's own crash (crash_kind), or the give-up deadline.
// A request that completed (or was resolved by the sibling watchdog) first
// makes this a no-op.
sim::Task<void> World::recv_watchdog(RecvRequest request, sim::Time when, bool crash_kind) {
  sim::Simulation& s = sim_of(request->owner);
  co_await s.delay(when - s.now());
  if (request->complete || request->timed_out || request->owner_crashed) co_return;
  if (crash_kind) {
    request->owner_crashed = true;
  } else {
    request->timed_out = true;
  }
  cancel_recv(request);
  if (request->waiter) {
    s.schedule_at(s.now(), request->waiter);
    request->waiter = nullptr;
  }
}

// Suspends until the request completes or a watchdog resolves it.  `deadline`
// is absolute; kTimeInfinity means "wait for the message" (plus, under the
// crash model, the owner's own crash).
sim::Task<void> World::block_on_recv(RecvRequest request, sim::Time deadline) {
  sim::Simulation& s = sim_of(request->owner);
  if (!request->complete && detector_) {
    const sim::Time now = s.now();
    const sim::Time own_crash = fault_->next_down(request->owner, now);
    if (now >= own_crash) {
      request->owner_crashed = true;
      cancel_recv(request);
      co_return;
    }
    if (now >= deadline) {
      request->timed_out = true;
      cancel_recv(request);
      co_return;
    }
    if (own_crash < sim::kTimeInfinity) {
      s.spawn(recv_watchdog(request, own_crash, /*crash_kind=*/true));
    }
    if (deadline < sim::kTimeInfinity) {
      s.spawn(recv_watchdog(request, deadline, /*crash_kind=*/false));
    }
  }
  if (!request->complete && !request->timed_out && !request->owner_crashed) {
    struct Suspend {
      RecvState* state;
      bool await_ready() const noexcept {
        return state->complete || state->timed_out || state->owner_crashed;
      }
      void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
      void await_resume() const noexcept {}
    };
    // NOTE: named awaiter on purpose (GCC 12 temporary-awaiter bug).
    Suspend suspend{request.get()};
    co_await suspend;
  }
}

sim::Task<Message> World::await_recv(RecvRequest request) {
  if (replay_feed_) co_return co_await replay_recv(std::move(request));
  // Even a plain receive gets a bound under the crash model: blocking on a
  // peer the detector has declared dead is turned into a loud error (and
  // the liveness net turns any remaining cross-wait into one too) instead
  // of a silent world deadlock.
  sim::Simulation& s = sim_of(request->owner);
  sim::Time deadline = sim::kTimeInfinity;
  if (detector_ && !request->complete && request->src >= 0 && request->owner >= 0) {
    deadline = std::min(detector_->detect_time_after(request->owner, request->src, s.now()),
                        s.now() + kLivenessTimeout);
  }
  co_await block_on_recv(request, deadline);
  if (request->owner_crashed) throw RankCrashed{request->owner, s.now()};
  if (request->timed_out) {
    throw std::runtime_error("recv on rank " + std::to_string(request->owner) + " from rank " +
                             std::to_string(request->src) +
                             " abandoned: peer declared dead (use the fault-tolerant receive "
                             "path for quorum collectives)");
  }
  co_await s.delay(network_.recv_overhead());
  record_recv_completion(request);
  co_return std::move(request->msg);
}

sim::Task<std::optional<Message>> World::await_recv_until(RecvRequest request,
                                                          sim::Time deadline) {
  if (replay_feed_) co_return co_await replay_recv_until(std::move(request));
  sim::Simulation& s = sim_of(request->owner);
  co_await block_on_recv(request, deadline);
  if (request->owner_crashed) throw RankCrashed{request->owner, s.now()};
  if (request->timed_out) {
    if (record_section_ != nullptr) {
      replay::Event ev;
      ev.kind = replay::EventKind::kRecvTimeout;
      ev.peer = request->src;
      ev.tag = request->tag;
      ev.time = s.now();
      record_section_->append(request->owner, std::move(ev));
    }
    co_return std::nullopt;
  }
  co_await s.delay(network_.recv_overhead());
  record_recv_completion(request);
  co_return std::move(request->msg);
}

sim::Task<Message> World::p2p_recv(int me, int src, std::int64_t tag) {
  co_return co_await await_recv(p2p_irecv(me, src, tag));
}

SendRequest World::p2p_isend(int src, int dst, std::int64_t tag, std::vector<double> data,
                             std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_isend: bad destination rank");
  check_crash(src);
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  auto request = std::make_shared<SendState>();
  request->owner = src;
  // The NIC takes over immediately; the rank's own overhead marks when the
  // send buffer is reusable (MPI_Wait on the isend).
  request->complete_at = sim_of(src).now() + network_.send_overhead();
  dispatch_message(src, dst, std::move(data), bytes, tag, request->complete_at);
  return request;
}

sim::Task<void> World::await_send(SendRequest request) {
  sim::Simulation& s = request->owner >= 0 ? sim_of(request->owner) : *sims_[0];
  const sim::Time now = s.now();
  if (request->complete_at > now) co_await s.delay(request->complete_at - now);
}

// ------------------------------------------------------------------ burst --

struct World::BurstState {
  int client_rank = -1;
  int ref_rank = -1;
  vclock::Clock* client_clock = nullptr;
  vclock::Clock* ref_clock = nullptr;
  sim::Time client_ready = 0.0;
  sim::Time ref_ready = 0.0;
  bool first_is_client = false;
  std::coroutine_handle<> first_handle = nullptr;
  int nexchanges = 0;
  std::int64_t bytes = 0;
  BurstResult result;
  sim::Time client_done = 0.0;
  sim::Time ref_done = 0.0;
};

std::uint64_t World::pair_key(int a, int b, int world_size) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * static_cast<std::uint64_t>(world_size) + hi;
}

void World::synthesize_burst(BurstState& st) {
  // Attempts per exchange under an active fault plan: 1 original +
  // (kMaxPingAttempts - 1) retries; an exchange still unanswered after that
  // is abandoned and reported via BurstResult::lost (the sync layer marks
  // the rank degraded rather than hanging).
  constexpr int kMaxPingAttempts = 3;
  constexpr double kPingTimeoutFactor = 10.0;  // of the expected round-trip time

  WorldMetrics& metrics = my_metrics();
  const double o_s = network_.send_overhead();
  const double o_r = network_.recv_overhead();
  sim::Time tc = st.client_ready;  // client's process-time cursor
  sim::Time tr = st.ref_ready;     // reference's process-time cursor
  const bool faulty = fault_ && fault_->net_active();
  const bool pausing = fault_ && fault_->pause_active();
  const bool crashy = detector_ != nullptr;
  // Crash-era bounds for this pair: the client stops once it would run past
  // its own crash time, and gives up on the whole burst once its detector
  // declares the reference dead (individual pings obey the uniform
  // crash-delivery rule below).
  sim::Time client_crash = sim::kTimeInfinity;
  sim::Time abandon_at = sim::kTimeInfinity;
  if (crashy) {
    client_crash = fault_->next_down(st.client_rank, st.client_ready);
    abandon_at = detector_->detect_time_after(st.client_rank, st.ref_rank, st.client_ready);
  }
  const LinkLevel level = network_.classify(st.client_rank, st.ref_rank);
  const double timeout =
      kPingTimeoutFactor * (2.0 * network_.expected_delay(level, st.bytes) + 2.0 * (o_s + o_r));
  st.result.requested = st.nexchanges;
  st.result.samples.reserve(static_cast<std::size_t>(st.nexchanges));
  bool aborted = false;
  for (int i = 0; i < st.nexchanges && !aborted; ++i) {
    for (int attempt = 0;; ++attempt) {
      if (crashy && (tc >= client_crash || tc >= abandon_at)) {
        // Dead client, or reference declared dead: this exchange and every
        // remaining one are lost; the waiter resolves the crash on resume.
        st.result.lost += st.nexchanges - i;
        aborted = true;
        break;
      }
      if (pausing) tc = fault_->release_time(st.client_rank, tc);
      const sim::Time attempt_start = tc;
      // The timeout guards against message loss, not partner lateness: the
      // reference may legitimately enter the burst long after the client
      // (Alg. 6 sleeps wait_time between rounds; serial schedules like JK
      // make client j wait for j-1 predecessors), so the deadline only
      // starts once both peers could be exchanging messages.
      const sim::Time deadline = std::max(attempt_start, st.ref_ready) + timeout;
      PingSample s;
      s.client_send = st.client_clock->at(tc);
      fault::NetFaultDecision ping_fd;
      const sim::Time arrive_ref = network_.deliver_time_uncontended(
          st.client_rank, st.ref_rank, st.bytes, tc + o_s, faulty ? &ping_fd : nullptr);
      bool timed_out = ping_fd.drop;
      if (crashy && !crash_delivered(st.client_rank, st.ref_rank, tc, arrive_ref)) {
        timed_out = true;
      }
      if (!timed_out) {
        sim::Time stamp_time = std::max(arrive_ref, tr) + o_r;
        if (pausing) stamp_time = fault_->release_time(st.ref_rank, stamp_time);
        s.ref_reply = st.ref_clock->at(stamp_time);
        const sim::Time reply_depart = stamp_time + o_s;
        tr = reply_depart;  // the reference served this ping whether or not the pong survives
        fault::NetFaultDecision pong_fd;
        const sim::Time arrive_client = network_.deliver_time_uncontended(
            st.ref_rank, st.client_rank, st.bytes, reply_depart, faulty ? &pong_fd : nullptr);
        // `faulty` gate: fault-free this branch must be taken unconditionally
        // so the synthesized schedule stays bit-identical to the seed model.
        // The crash rule also covers the reference dying mid-service: a
        // reply departing after its crash necessarily arrives after it.
        if (pong_fd.drop || (faulty && arrive_client + o_r > deadline) ||
            (crashy && !crash_delivered(st.ref_rank, st.client_rank, reply_depart,
                                        arrive_client))) {
          timed_out = true;  // pong lost, or it arrived after the client gave up
        } else {
          const sim::Time recv_time = arrive_client + o_r;
          s.client_recv = st.client_clock->at(recv_time);
          st.result.samples.push_back(s);
          if (metrics.rtt) metrics.rtt->observe(recv_time - attempt_start);
          tc = recv_time;
          break;
        }
      }
      tc = deadline;  // client resumes at its timeout deadline
      if (attempt + 1 >= kMaxPingAttempts) {
        ++st.result.lost;
        break;
      }
      ++st.result.retries;
    }
  }
  st.client_done = tc;
  st.ref_done = tr;
  if (metrics.pingpongs) metrics.pingpongs->inc(static_cast<std::uint64_t>(st.nexchanges));
  if (faulty) {
    if (metrics.burst_retries) metrics.burst_retries->observe(st.result.retries);
    if (metrics.exchanges_lost && st.result.lost > 0) {
      metrics.exchanges_lost->inc(static_cast<std::uint64_t>(st.result.lost));
    }
  }
  if (trace::Tracer* tracer = trace::active_tracer()) {
    // Explicit timestamps: the burst is synthesized, so "now" would misplace
    // it.  This span is where HCA3 spends its RTT budget.
    tracer->record_complete(st.client_rank, trace::Category::kNet, "pingpong_burst",
                            st.client_ready, st.client_done - st.client_ready, st.nexchanges);
  }
}

// Resolves a first-arriver wait the partner will never complete: at `when`
// (the waiter's own crash time, or the moment its detector declares the
// partner dead) the burst is reported fully lost and the waiter resumed —
// it re-checks its own crash on resume.  A burst that paired in the
// meantime cleared first_handle, making this a no-op.  Intra-node waits
// also un-register from the shard's pairing map; cross-node halves are
// lazily skipped by the rendezvous drain instead.
sim::Task<void> World::burst_watchdog(std::shared_ptr<BurstState> st, std::uint64_t key,
                                      sim::Time when, bool cross_node) {
  const int owner = st->first_is_client ? st->client_rank : st->ref_rank;
  sim::Simulation& s = sim_of(owner);
  if (when > s.now()) co_await s.delay(when - s.now());
  if (!st->first_handle) co_return;
  st->result.requested = st->nexchanges;
  st->result.lost = st->nexchanges;
  if (fault_) fault_->count_crash_drop();
  if (!cross_node) {
    auto& bursts = shard_states_[static_cast<std::size_t>(shard_of_rank(owner))].local_bursts;
    const auto it = bursts.find(key);
    if (it != bursts.end() && it->second == st) bursts.erase(it);
  }
  s.schedule_at(s.now(), st->first_handle);
  st->first_handle = nullptr;
}

sim::Task<BurstResult> World::pingpong_burst(int me, int partner, bool i_am_client,
                                             vclock::Clock& my_clock, int nexchanges,
                                             std::int64_t bytes) {
  if (nexchanges < 1) throw std::invalid_argument("pingpong_burst: nexchanges must be >= 1");
  if (me == partner) throw std::invalid_argument("pingpong_burst: self ping-pong");
  check_crash(me);
  if (replay_feed_) co_return co_await replay_burst(me, partner, i_am_client);
  BurstResult result;
  if (node_of_rank_[static_cast<std::size_t>(me)] ==
      node_of_rank_[static_cast<std::size_t>(partner)]) {
    result = co_await pingpong_burst_local(me, partner, i_am_client, my_clock, nexchanges, bytes);
  } else {
    result = co_await pingpong_burst_cross(me, partner, i_am_client, my_clock, nexchanges, bytes);
  }
  if (record_section_ != nullptr) {
    // Recorded at the caller's resume point (its own shard thread, at the
    // clamped done time — both shard-count-invariant), never from the
    // coordinator's rendezvous drain.
    replay::Event ev;
    ev.kind = replay::EventKind::kBurst;
    ev.flags = i_am_client ? 1 : 0;
    ev.peer = partner;
    ev.time = sim_of(me).now();
    ev.values = replay::encode_burst(result);
    ev.digest = replay::payload_digest(ev.values);
    record_section_->append(me, std::move(ev));
  }
  co_return result;
}

// Intra-node burst: both callers live in the same shard, so the pairing map
// and inline synthesis work exactly as in the unsharded engine.
sim::Task<BurstResult> World::pingpong_burst_local(int me, int partner, bool i_am_client,
                                                   vclock::Clock& my_clock, int nexchanges,
                                                   std::int64_t bytes) {
  sim::Simulation& s = sim_of(me);
  auto& bursts = shard_states_[static_cast<std::size_t>(shard_of_rank(me))].local_bursts;
  const std::uint64_t key = pair_key(me, partner, size());
  const auto it = bursts.find(key);

  // NOTE: awaiters with non-trivially-destructible members must be named
  // locals, never co_await'ed as brace-init temporaries: GCC 12 destroys such
  // temporaries twice at the resume point (sibling of the "array used as
  // initializer" bug; see util/vec.hpp).
  struct SuspendForPartner {
    std::shared_ptr<BurstState> st;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { st->first_handle = h; }
    void await_resume() const noexcept {}
  };
  struct ResumeAt {
    sim::Simulation* sim;
    sim::Time when;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sim->schedule_at(when, h); }
    void await_resume() const noexcept {}
  };

  if (it == bursts.end()) {
    auto st = std::make_shared<BurstState>();
    st->nexchanges = nexchanges;
    st->bytes = bytes;
    st->first_is_client = i_am_client;
    if (i_am_client) {
      st->client_rank = me;
      st->client_clock = &my_clock;
      st->client_ready = s.now();
    } else {
      st->ref_rank = me;
      st->ref_clock = &my_clock;
      st->ref_ready = s.now();
    }
    bursts[key] = st;
    if (detector_) {
      const sim::Time partner_dead = detector_->detect_time_after(me, partner, s.now());
      if (partner_dead <= s.now()) {
        // Partner already declared dead: resolve as fully lost without
        // suspending (a watchdog due "now" would fire before the suspend
        // below publishes the waiter handle).
        bursts.erase(key);
        st->result.requested = nexchanges;
        st->result.lost = nexchanges;
        fault_->count_crash_drop();
        co_return st->result;
      }
      // check_crash above guarantees now < own crash time, so both watchdogs
      // fire strictly in the future, after the waiter handle is published.
      const sim::Time own_crash = fault_->next_down(me, s.now());
      if (own_crash < sim::kTimeInfinity) {
        s.spawn(burst_watchdog(st, key, own_crash, /*cross_node=*/false));
      }
      if (partner_dead < sim::kTimeInfinity) {
        s.spawn(burst_watchdog(st, key, partner_dead, /*cross_node=*/false));
      }
    }
    SuspendForPartner wait_for_partner{st};
    co_await wait_for_partner;
    check_crash(me);
    co_return st->result;
  }

  auto st = it->second;
  bursts.erase(it);
  if (st->nexchanges != nexchanges || st->first_is_client == i_am_client) {
    throw std::logic_error("pingpong_burst: mismatched burst call between partners");
  }
  if (i_am_client) {
    st->client_rank = me;
    st->client_clock = &my_clock;
    st->client_ready = s.now();
  } else {
    st->ref_rank = me;
    st->ref_clock = &my_clock;
    st->ref_ready = s.now();
  }
  synthesize_burst(*st);
  s.schedule_at(st->first_is_client ? st->client_done : st->ref_done, st->first_handle);
  st->first_handle = nullptr;  // burst watchdogs must not resume it again
  ResumeAt resume_at{&s, i_am_client ? st->client_done : st->ref_done};
  co_await resume_at;
  check_crash(me);
  co_return st->result;
}

// Cross-node burst: each caller parks its half in its shard and suspends;
// the window-boundary rendezvous pairs the halves, synthesizes the burst
// with both clocks in hand, and resumes both callers.  This path runs at
// every shard count (including 1), so pairing and synthesis order never
// depend on the shard layout.
sim::Task<BurstResult> World::pingpong_burst_cross(int me, int partner, bool i_am_client,
                                                   vclock::Clock& my_clock, int nexchanges,
                                                   std::int64_t bytes) {
  sim::Simulation& s = sim_of(me);
  const std::uint64_t key = pair_key(me, partner, size());
  auto st = std::make_shared<BurstState>();
  st->nexchanges = nexchanges;
  st->bytes = bytes;
  st->first_is_client = i_am_client;
  if (i_am_client) {
    st->client_rank = me;
    st->client_clock = &my_clock;
    st->client_ready = s.now();
  } else {
    st->ref_rank = me;
    st->ref_clock = &my_clock;
    st->ref_ready = s.now();
  }
  if (detector_) {
    const sim::Time partner_dead = detector_->detect_time_after(me, partner, s.now());
    if (partner_dead <= s.now()) {
      st->result.requested = nexchanges;
      st->result.lost = nexchanges;
      fault_->count_crash_drop();
      co_return st->result;
    }
    const sim::Time own_crash = fault_->next_down(me, s.now());
    if (own_crash < sim::kTimeInfinity) {
      s.spawn(burst_watchdog(st, key, own_crash, /*cross_node=*/true));
    }
    if (partner_dead < sim::kTimeInfinity) {
      s.spawn(burst_watchdog(st, key, partner_dead, /*cross_node=*/true));
    }
  }
  shard_states_[static_cast<std::size_t>(shard_of_rank(me))].halves.push_back(
      PendingHalf{key, i_am_client, st});

  struct SuspendForPartner {
    std::shared_ptr<BurstState> st;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { st->first_handle = h; }
    void await_resume() const noexcept {}
  };
  // NOTE: named awaiter on purpose (GCC 12 temporary-awaiter bug).
  SuspendForPartner wait_for_partner{st};
  co_await wait_for_partner;
  check_crash(me);
  co_return st->result;
}

// Window-boundary rendezvous for cross-node bursts.  Halves are paired in
// (key, role) sort order; a half whose watchdog already resolved it is
// skipped (the "watchdog wins within its window" rule — both the watchdog's
// firing time and the window boundaries are shard-count-invariant, so which
// one wins never depends on the layout).  Synthesis runs under the client
// shard's observability context, and both callers resume no earlier than
// the end of the window just finished.
void World::drain_burst_halves() {
  std::vector<PendingHalf> halves;
  for (auto& ss : shard_states_) {
    for (auto& h : ss.halves) halves.push_back(std::move(h));
    ss.halves.clear();
  }
  if (halves.empty() && rendezvous_.empty()) return;
  std::sort(halves.begin(), halves.end(), [](const PendingHalf& a, const PendingHalf& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.is_client && !b.is_client;
  });
  for (PendingHalf& h : halves) {
    if (!h.st->first_handle) continue;  // watchdog resolved it this window
    auto it = rendezvous_.find(h.key);
    if (it != rendezvous_.end() && !it->second.st->first_handle) {
      rendezvous_.erase(it);  // stale: first arriver gave up via watchdog
      it = rendezvous_.end();
    }
    if (it == rendezvous_.end()) {
      rendezvous_.emplace(h.key, h);
      continue;
    }
    const PendingHalf first = it->second;
    rendezvous_.erase(it);
    const auto st = first.st;
    if (st->nexchanges != h.st->nexchanges || first.is_client == h.is_client) {
      sim::set_current_shard(0);
      throw std::logic_error("pingpong_burst: mismatched burst call between partners");
    }
    if (h.is_client) {
      st->client_rank = h.st->client_rank;
      st->client_clock = h.st->client_clock;
      st->client_ready = h.st->client_ready;
    } else {
      st->ref_rank = h.st->ref_rank;
      st->ref_clock = h.st->ref_clock;
      st->ref_ready = h.st->ref_ready;
    }
    const int client_shard = shard_of_rank(st->client_rank);
    {
      sim::set_current_shard(client_shard);
      trace::ScopedTracer tracer_guard(
          shard_tracers_.empty() ? parent_tracer_
                                 : shard_tracers_[static_cast<std::size_t>(client_shard)].get());
      trace::ScopedMetrics metrics_guard(
          shard_registries_.empty()
              ? parent_metrics_
              : shard_registries_[static_cast<std::size_t>(client_shard)].get());
      synthesize_burst(*st);
    }
    h.st->result = st->result;
    const int first_rank = first.is_client ? st->client_rank : st->ref_rank;
    const sim::Time first_done = first.is_client ? st->client_done : st->ref_done;
    const sim::Time second_done = h.is_client ? st->client_done : st->ref_done;
    // Resumes clamp to the end of the window that just ran: a reference
    // whose service finished early may not re-enter its shard mid-window.
    // The clamp time is itself shard-count-invariant, so so are the resumes.
    sim_of(first_rank).schedule_at(std::max(first_done, last_window_end_), st->first_handle);
    st->first_handle = nullptr;
    const int second_rank = h.is_client ? st->client_rank : st->ref_rank;
    sim_of(second_rank).schedule_at(std::max(second_done, last_window_end_), h.st->first_handle);
    h.st->first_handle = nullptr;
  }
  sim::set_current_shard(0);
}

// -------------------------------------------------- record / replay --------
//
// Recording appends one Event per rank-visible transport completion (and per
// hooked clock read) to this World's section of the installed Recorder;
// replay re-runs one rank against such a log, resuming it at the recorded
// absolute sim-times and verifying everything it emits against the recorded
// stream (docs/record-replay.md).

namespace {

std::string fmt_time(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

// NOTE: named awaiter on purpose (GCC 12 temporary-awaiter bug).  schedule_at
// clamps past times to "now", so recorded absolute times resume exactly —
// a relative delay(t - now) could drift by an ulp.
struct ReplayResume {
  sim::Simulation* sim;
  sim::Time when;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { sim->schedule_at(when, h); }
  void await_resume() const noexcept {}
};

}  // namespace

void World::attach_replay(replay::ReplayFeed* feed, int rank) {
  if (nshards_ != 1) {
    throw std::invalid_argument(
        "attach_replay: single-rank replay requires an unsharded World (--shards 1)");
  }
  if (feed == nullptr) throw std::invalid_argument("attach_replay: null feed");
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("attach_replay: rank " + std::to_string(rank) +
                            " not in a World of " + std::to_string(size()) + " ranks");
  }
  replay_feed_ = feed;
  replay_rank_ = rank;
  record_section_ = nullptr;  // a replay run is never itself recorded
}

void World::record_recv_completion(const RecvRequest& request) {
  if (record_section_ == nullptr) return;
  replay::Event ev;
  ev.kind = replay::EventKind::kRecv;
  ev.peer = request->msg.src;
  ev.tag = request->msg.tag;
  ev.bytes = request->msg.bytes;
  ev.time = sim_of(request->owner).now();
  ev.aux0 = request->msg.sent_at;
  ev.aux1 = request->msg.arrived_at;
  ev.values = request->msg.data;
  ev.digest = replay::payload_digest(ev.values);
  record_section_->append(request->owner, std::move(ev));
}

double World::clock_read_hook(int rank, vclock::Clock& clock) {
  if (replay_feed_) {
    const replay::Event* ev = replay_feed_->peek();
    if (ev == nullptr) {
      replay_feed_->diverge("recorded event log exhausted at a direct clock read");
    }
    if (ev->kind != replay::EventKind::kClockRead) {
      replay_feed_->diverge(std::string("clock read does not match recorded ") +
                            replay::to_string(ev->kind) + " (peer " + std::to_string(ev->peer) +
                            ", sim-time " + fmt_time(ev->time) + ")");
    }
    const sim::Time now = sim_of(rank).now();
    if (ev->time != now) {
      replay_feed_->diverge("clock read at sim-time " + fmt_time(now) + ", recorded at " +
                            fmt_time(ev->time));
    }
    const double value = ev->values.empty() ? 0.0 : ev->values[0];
    replay_feed_->take();
    return value;
  }
  const double value = clock.now();
  if (record_section_ != nullptr) {
    replay::Event ev;
    ev.kind = replay::EventKind::kClockRead;
    ev.time = sim_of(rank).now();
    ev.values.push_back(value);
    ev.digest = replay::payload_digest(ev.values);
    record_section_->append(rank, std::move(ev));
  }
  return value;
}

void World::replay_verify_send(int dst, std::int64_t tag, std::int64_t bytes,
                               const std::vector<double>& data, sim::Time ready) {
  const replay::Event* ev = replay_feed_->peek();
  if (ev == nullptr) {
    replay_feed_->diverge("recorded event log exhausted at a send to rank " +
                          std::to_string(dst));
  }
  if (ev->kind != replay::EventKind::kSend || ev->peer != dst || ev->tag != tag ||
      ev->bytes != bytes) {
    replay_feed_->diverge("send to rank " + std::to_string(dst) + " (tag " +
                          std::to_string(tag) + ", " + std::to_string(bytes) +
                          " bytes) does not match recorded " +
                          replay::to_string(ev->kind) + " (peer " + std::to_string(ev->peer) +
                          ", tag " + std::to_string(ev->tag) + ", " +
                          std::to_string(ev->bytes) + " bytes)");
  }
  if (ev->time != ready) {
    replay_feed_->diverge("send to rank " + std::to_string(dst) + " dispatched at sim-time " +
                          fmt_time(ready) + ", recorded at " + fmt_time(ev->time));
  }
  if (ev->digest != replay::payload_digest(data)) {
    replay_feed_->diverge("send to rank " + std::to_string(dst) +
                          " payload digest differs from the recording");
  }
  replay_feed_->take();
}

sim::Task<Message> World::replay_recv(RecvRequest request) {
  const int me = request->owner;
  cancel_recv(request);  // no peer will ever complete it
  sim::Simulation& s = sim_of(me);
  check_crash(me);
  const replay::Event* ev = replay_feed_->peek();
  if (ev == nullptr) {
    co_await replay_starve(me);  // crash at the recorded time, or diverge
    co_return Message{};         // unreachable: replay_starve always throws
  }
  if (ev->kind == replay::EventKind::kMembership && ev->flags == 0) {
    // The recording marks this rank's departure here: die exactly as record
    // mode did (the churn supervisor resumes the next incarnation).
    const sim::Time when = ev->time;
    replay_feed_->take();
    ReplayResume resume{&s, when};
    co_await resume;
    throw RankCrashed{me, s.now()};
  }
  if (ev->kind != replay::EventKind::kRecv || ev->peer != request->src ||
      ev->tag != request->tag) {
    replay_feed_->diverge("recv from rank " + std::to_string(request->src) + " (tag " +
                          std::to_string(request->tag) + ") does not match recorded " +
                          replay::to_string(ev->kind) + " (peer " + std::to_string(ev->peer) +
                          ", tag " + std::to_string(ev->tag) + ")");
  }
  Message msg;
  msg.src = ev->peer;
  msg.tag = ev->tag;
  msg.bytes = ev->bytes;
  msg.sent_at = ev->aux0;
  msg.arrived_at = ev->aux1;
  msg.data = ev->values;
  const sim::Time when = ev->time;
  replay_feed_->take();
  ReplayResume resume{&s, when};
  co_await resume;
  check_crash(me);
  co_return msg;
}

sim::Task<std::optional<Message>> World::replay_recv_until(RecvRequest request) {
  const int me = request->owner;
  const replay::Event* ev = replay_feed_->peek();
  if (ev != nullptr && ev->kind == replay::EventKind::kRecvTimeout) {
    cancel_recv(request);
    sim::Simulation& s = sim_of(me);
    check_crash(me);
    if (ev->peer != request->src || ev->tag != request->tag) {
      replay_feed_->diverge("bounded recv from rank " + std::to_string(request->src) + " (tag " +
                            std::to_string(request->tag) + ") does not match recorded timeout " +
                            "(peer " + std::to_string(ev->peer) + ", tag " +
                            std::to_string(ev->tag) + ")");
    }
    const sim::Time when = ev->time;
    replay_feed_->take();
    ReplayResume resume{&s, when};
    co_await resume;
    check_crash(me);
    co_return std::nullopt;
  }
  co_return co_await replay_recv(std::move(request));
}

sim::Task<BurstResult> World::replay_burst(int me, int partner, bool i_am_client) {
  sim::Simulation& s = sim_of(me);
  const replay::Event* ev = replay_feed_->peek();
  if (ev == nullptr) {
    co_await replay_starve(me);
    co_return BurstResult{};  // unreachable: replay_starve always throws
  }
  if (ev->kind == replay::EventKind::kMembership && ev->flags == 0) {
    const sim::Time when = ev->time;
    replay_feed_->take();
    ReplayResume resume{&s, when};
    co_await resume;
    throw RankCrashed{me, s.now()};
  }
  const std::uint8_t role = i_am_client ? 1 : 0;
  if (ev->kind != replay::EventKind::kBurst || ev->peer != partner || ev->flags != role) {
    replay_feed_->diverge("pingpong_burst with rank " + std::to_string(partner) + " as " +
                          (i_am_client ? "client" : "reference") + " does not match recorded " +
                          replay::to_string(ev->kind) + " (peer " + std::to_string(ev->peer) +
                          ", flags " + std::to_string(ev->flags) + ")");
  }
  BurstResult result = replay::decode_burst(ev->values);
  const sim::Time when = ev->time;
  replay_feed_->take();
  ReplayResume resume{&s, when};
  co_await resume;
  check_crash(me);
  co_return result;
}

// The recording of a crashed rank simply ends at its last completed
// operation; there is no explicit crash event.  When the feed runs dry and
// the (purely deterministic) failure detector says this rank does crash,
// advance to that moment and die exactly as record mode did.  Any other
// exhaustion means the replayed program out-ran the recording.
sim::Task<void> World::replay_starve(int me) {
  if (detector_ != nullptr) {
    const sim::Time crash = fault_->next_down(me, sim_of(me).now());
    if (crash < sim::kTimeInfinity) {
      sim::Simulation& s = sim_of(me);
      if (crash > s.now()) {
        ReplayResume resume{&s, crash};
        co_await resume;
      }
      throw RankCrashed{me, s.now()};
    }
  }
  replay_feed_->diverge(
      "recorded event log exhausted (the replayed program performed more operations than the "
      "recording)");
}

// One process per churning rank for the whole run: each scheduled up-period
// runs `fn` as a child coroutine (process accounting sees one spawn, like
// the guarded path), a RankCrashed unwind ends the incarnation, and the
// next one starts — with a purged mailbox and a fresh communicator — at the
// plan's restart time.  A program that completes normally ends the rank for
// good, so churn events scheduled beyond the last operation change nothing
// (the armed-but-unfired guarantee extends to churn plans).
sim::Task<void> World::churn_supervisor(RankFn fn, RankCtx& ctx) {
  const int rank = ctx.rank();
  sim::Simulation& s = sim_of(rank);
  const int incarnations = fault_->incarnation_count(rank);
  for (int k = 0; k < incarnations; ++k) {
    sim::Time start = fault_->up_start(rank, k);
    if (start >= sim::kTimeInfinity) break;           // a final crash: no restart
    if (fault_->up_end(rank, k) <= start) continue;   // empty slot (join: down from 0)
    if (replay_feed_ && k > 0) {
      // The restart instant was recorded as a membership "up" marker; resume
      // exactly there (and verify the plan still schedules this restart).
      const replay::Event* ev = replay_feed_->peek();
      if (ev == nullptr) co_return;  // recording ended while down
      if (ev->kind != replay::EventKind::kMembership || ev->flags != 1) {
        replay_feed_->diverge(std::string("restart of rank ") + std::to_string(rank) +
                              " does not match recorded " + replay::to_string(ev->kind));
      }
      start = ev->time;
      replay_feed_->take();
    }
    if (start > s.now()) {
      if (replay_feed_) {
        ReplayResume resume{&s, start};
        co_await resume;
      } else {
        co_await s.delay(start - s.now());
      }
    }
    if (k > 0) {
      purge_mailbox(rank);
      ctx.reset_comm();
      if (record_section_ != nullptr) {
        replay::Event ev;
        ev.kind = replay::EventKind::kMembership;
        ev.flags = 1;  // up
        ev.time = s.now();
        ev.aux0 = static_cast<double>(k);
        record_section_->append(rank, std::move(ev));
      }
    }
    try {
      co_await fn(ctx);
      co_return;  // normal completion: later churn events never fire
    } catch (const RankCrashed&) {
      if (replay_feed_) {
        // When the oracle check (not the feed) raised the crash, the
        // recorded down marker is still at the head: consume it so the
        // restart peek below sees the matching up marker.
        const replay::Event* ev = replay_feed_->peek();
        if (ev != nullptr && ev->kind == replay::EventKind::kMembership && ev->flags == 0) {
          replay_feed_->take();
        }
      }
      if (record_section_ != nullptr) {
        replay::Event ev;
        ev.kind = replay::EventKind::kMembership;
        ev.flags = 0;  // down
        ev.time = s.now();
        ev.aux0 = static_cast<double>(k);
        record_section_->append(rank, std::move(ev));
      }
    }
  }
}

}  // namespace hcs::simmpi
