#include "simmpi/world.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "simmpi/comm.hpp"

namespace hcs::simmpi {

// ---------------------------------------------------------------- RankCtx --

RankCtx::RankCtx(World& world, int rank)
    : world_(&world), rank_(rank), comm_world_(std::make_unique<Comm>(Comm::world_comm(world, rank))) {}

RankCtx::~RankCtx() = default;

vclock::ClockPtr RankCtx::base_clock() const { return world_->base_clock(rank_); }

sim::Simulation& RankCtx::sim() const { return world_->sim(); }

// ------------------------------------------------------------------ World --

World::World(topology::MachineConfig machine, std::uint64_t seed, fault::FaultPlan fault_plan)
    : machine_(std::move(machine)),
      sim_(seed),
      network_(machine_.topo, machine_.net, seed ^ 0x9e3779b97f4a7c15ULL) {
  const int sources = machine_.topo.num_time_sources();
  hw_clocks_.reserve(static_cast<std::size_t>(sources));
  std::uint64_t sm = seed ^ 0xd1b54a32d192ed03ULL;
  for (int s = 0; s < sources; ++s) {
    hw_clocks_.push_back(
        std::make_shared<vclock::HardwareClock>(sim_, machine_.clocks, sim::splitmix64(sm)));
  }
  mailboxes_.resize(static_cast<std::size_t>(size()));
  time_source_.sim = &sim_;
  if (trace::Tracer* tracer = trace::active_tracer()) {
    tracer->set_time_source(&time_source_, trace::TimeSourceKind::kSimTime);
  }
  if (trace::MetricsRegistry* m = trace::active_metrics()) {
    rtt_metric_ = &m->histogram("sync.rtt");
    pingpong_counter_ = &m->counter("sync.pingpongs");
    burst_retry_metric_ = &m->histogram("sync.burst_retries", trace::MetricUnit::kNone);
    lost_exchange_metric_ = &m->counter("sync.exchanges_lost");
    dup_absorbed_metric_ = &m->counter("fault.net.dup_absorbed");
  }
  if (!fault_plan.empty()) {
    // The injector's streams derive from the World seed (plus the plan's own
    // seed, mixed in by the injector), never from the network/clock RNGs:
    // fault decisions cannot perturb the fault-free random sequences.
    fault_ = std::make_unique<fault::FaultInjector>(fault_plan, seed ^ 0xa0761d6478bd642fULL,
                                                    size());
    network_.set_fault_injector(fault_.get());
    seq_tracking_ = fault_->net_active();
    if (fault_->crash_active()) {
      detector_ = std::make_unique<FailureDetector>(*fault_, network_, size());
    }
    if (seq_tracking_) {
      send_seq_.assign(static_cast<std::size_t>(size()) * static_cast<std::size_t>(size()), 0);
    }
    for (const fault::ClockFault& cf : fault_->clock_faults()) {
      // A clock fault targets the rank's time source; co-located ranks that
      // share the source are affected together, as on a real node.
      auto& hw = hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(cf.rank))];
      if (cf.kind == fault::FaultKind::kClockStep) {
        hw->inject_step(cf.at, cf.delta);
      } else {
        hw->inject_frequency_jump(cf.at, cf.delta);
      }
    }
  }
}

World::~World() {
  trace::Tracer* tracer = trace::active_tracer();
  if (tracer && tracer->time_source() == &time_source_) tracer->set_time_source(nullptr);
}

vclock::ClockPtr World::base_clock(int rank) const {
  return hw_clocks_[static_cast<std::size_t>(machine_.topo.time_source_id(rank))];
}

RankCtx& World::ctx(int rank) {
  if (ctxs_.empty()) {
    ctxs_.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) ctxs_.push_back(std::make_unique<RankCtx>(*this, r));
  }
  return *ctxs_[static_cast<std::size_t>(rank)];
}

namespace {
// Under the crash model a victim rank unwinds via RankCrashed at its next
// transport operation; the guard absorbs it so the process finishes cleanly
// (no deadlock report, no result) while real errors still propagate.
sim::Task<void> run_rank_guarded(World::RankFn fn, RankCtx& ctx) {
  try {
    co_await fn(ctx);
  } catch (const RankCrashed&) {
  }
}
}  // namespace

void World::launch(const RankFn& fn) {
  const bool guard = detector_ != nullptr;
  for (int r = 0; r < size(); ++r) {
    if (guard) {
      sim_.spawn(run_rank_guarded(fn, ctx(r)));
    } else {
      sim_.spawn(fn(ctx(r)));
    }
  }
}

void World::run(std::uint64_t max_events) {
  sim_.run(max_events);
  if (sim_.processes_finished() != sim_.processes_spawned()) {
    throw std::runtime_error(
        "World::run: deadlock — " +
        std::to_string(sim_.processes_spawned() - sim_.processes_finished()) +
        " of " + std::to_string(sim_.processes_spawned()) + " processes still blocked");
  }
}

void World::run_all(const RankFn& fn, std::uint64_t max_events) {
  launch(fn);
  run(max_events);
}

// -------------------------------------------------------------------- p2p --

namespace {
sim::Task<void> deliver_later(World& world, sim::Time arrive, int dst, Message msg) {
  co_await world.sim().delay(arrive - world.sim().now());
  world.deliver_now(dst, std::move(msg));
}
}  // namespace

// Hands one message to the network: fault evaluation (drops absorbed by the
// network's bounded retransmission), pause-window translation at both
// endpoints, channel sequencing, and the optional duplicate copy.  Shared by
// p2p_send and p2p_isend; identical to the pre-fault path when no injector
// is attached.
void World::dispatch_message(int src, int dst, std::vector<double> data, std::int64_t bytes,
                             std::int64_t tag, sim::Time ready) {
  if (fault_) ready = fault_->release_time(src, ready);
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.data = std::move(data);
  msg.bytes = bytes;
  msg.sent_at = ready;
  if (seq_tracking_) {
    msg.seq = send_seq_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size()) +
                        static_cast<std::size_t>(dst)]++;
  }
  DeliveryFaults df;
  sim::Time arrive = network_.deliver_time(src, dst, bytes, ready, seq_tracking_ ? &df : nullptr);
  if (fault_) arrive = fault_->release_time(dst, arrive);
  msg.arrived_at = arrive;
  if (df.duplicate) {
    // The second copy rides the network fault-blind (no recursive faults)
    // and keeps the original sequence number, so the receiving mailbox
    // absorbs whichever copy arrives second.
    Message copy = msg;
    sim::Time dup_arrive = network_.deliver_time(src, dst, bytes, ready);
    if (fault_) dup_arrive = fault_->release_time(dst, dup_arrive);
    copy.arrived_at = dup_arrive;
    if (!detector_ || crash_delivered(src, dst, dup_arrive)) {
      sim_.spawn(deliver_later(*this, dup_arrive, dst, std::move(copy)));
    } else {
      fault_->count_crash_drop();
    }
  }
  if (!detector_ || crash_delivered(src, dst, arrive)) {
    sim_.spawn(deliver_later(*this, arrive, dst, std::move(msg)));
  } else {
    // The crash rule trumps the reliable transport's "final retransmission
    // always lands": a dead endpoint or severed link loses the message for
    // good, in-flight copies included.
    fault_->count_crash_drop();
  }
}

bool World::crash_delivered(int src, int dst, sim::Time arrive) const noexcept {
  return arrive < fault_->crash_time(src) && arrive < fault_->crash_time(dst) &&
         arrive < fault_->link_down_time(src, dst);
}

sim::Task<void> World::p2p_send(int src, int dst, std::int64_t tag, std::vector<double> data,
                                std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_send: bad destination rank");
  check_crash(src);
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  co_await sim_.delay(network_.send_overhead());
  check_crash(src);  // a crash inside the send overhead kills the message too
  dispatch_message(src, dst, std::move(data), bytes, tag, sim_.now());
}

void World::deliver_now(int dst, Message msg) {
  if (!seq_tracking_) {
    match_or_enqueue(dst, std::move(msg));
    return;
  }
  // Channel repair: absorb duplicates and hold back out-of-order messages so
  // the MPI layer keeps its per-channel FIFO guarantee under fault plans
  // that can reorder deliveries (tested in tests/fault/).
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  if (mb.expected_seq.empty()) mb.expected_seq.assign(static_cast<std::size_t>(size()), 0);
  std::uint64_t& expected = mb.expected_seq[static_cast<std::size_t>(msg.src)];
  if (msg.seq < expected) {
    if (dup_absorbed_metric_) dup_absorbed_metric_->inc();
    return;
  }
  if (msg.seq > expected) {
    if (!mb.held.emplace(std::make_pair(msg.src, msg.seq), std::move(msg)).second) {
      if (dup_absorbed_metric_) dup_absorbed_metric_->inc();
    }
    return;
  }
  const int src = msg.src;
  match_or_enqueue(dst, std::move(msg));
  ++expected;
  for (auto it = mb.held.find({src, expected}); it != mb.held.end();
       it = mb.held.find({src, expected})) {
    Message next = std::move(it->second);
    mb.held.erase(it);
    match_or_enqueue(dst, std::move(next));
    ++expected;
  }
}

void World::match_or_enqueue(int dst, Message msg) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  const auto it = std::find_if(mb.posted.begin(), mb.posted.end(), [&](const RecvRequest& r) {
    return r->src == msg.src && r->tag == msg.tag;
  });
  if (it == mb.posted.end()) {
    mb.unexpected.push_back(std::move(msg));
    return;
  }
  const RecvRequest request = *it;
  mb.posted.erase(it);
  request->msg = std::move(msg);
  request->complete = true;
  if (request->waiter) {
    sim_.schedule_at(sim_.now(), request->waiter);
    request->waiter = nullptr;
  }
}

RecvRequest World::p2p_irecv(int me, int src, std::int64_t tag) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(me)];
  auto request = std::make_shared<RecvState>();
  request->src = src;
  request->tag = tag;
  request->owner = me;
  const auto it = std::find_if(mb.unexpected.begin(), mb.unexpected.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
  if (it != mb.unexpected.end()) {
    request->msg = std::move(*it);
    mb.unexpected.erase(it);
    request->complete = true;
    return request;
  }
  mb.posted.push_back(request);
  return request;
}

void World::cancel_recv(const RecvRequest& request) {
  if (request->owner < 0) return;
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(request->owner)];
  const auto it = std::find(mb.posted.begin(), mb.posted.end(), request);
  if (it != mb.posted.end()) mb.posted.erase(it);
}

// Resumes a blocked receive when the crash model resolves it without a
// message: the owner's own crash (crash_kind), or the give-up deadline.
// A request that completed (or was resolved by the sibling watchdog) first
// makes this a no-op.
sim::Task<void> World::recv_watchdog(RecvRequest request, sim::Time when, bool crash_kind) {
  co_await sim_.delay(when - sim_.now());
  if (request->complete || request->timed_out || request->owner_crashed) co_return;
  if (crash_kind) {
    request->owner_crashed = true;
  } else {
    request->timed_out = true;
  }
  cancel_recv(request);
  if (request->waiter) {
    sim_.schedule_at(sim_.now(), request->waiter);
    request->waiter = nullptr;
  }
}

// Suspends until the request completes or a watchdog resolves it.  `deadline`
// is absolute; kTimeInfinity means "wait for the message" (plus, under the
// crash model, the owner's own crash).
sim::Task<void> World::block_on_recv(RecvRequest request, sim::Time deadline) {
  if (!request->complete && detector_) {
    const sim::Time now = sim_.now();
    const sim::Time own_crash = detector_->crash_time(request->owner);
    if (now >= own_crash) {
      request->owner_crashed = true;
      cancel_recv(request);
      co_return;
    }
    if (now >= deadline) {
      request->timed_out = true;
      cancel_recv(request);
      co_return;
    }
    if (own_crash < sim::kTimeInfinity) {
      sim_.spawn(recv_watchdog(request, own_crash, /*crash_kind=*/true));
    }
    if (deadline < sim::kTimeInfinity) {
      sim_.spawn(recv_watchdog(request, deadline, /*crash_kind=*/false));
    }
  }
  if (!request->complete && !request->timed_out && !request->owner_crashed) {
    struct Suspend {
      RecvState* state;
      bool await_ready() const noexcept {
        return state->complete || state->timed_out || state->owner_crashed;
      }
      void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
      void await_resume() const noexcept {}
    };
    // NOTE: named awaiter on purpose (GCC 12 temporary-awaiter bug).
    Suspend suspend{request.get()};
    co_await suspend;
  }
}

sim::Task<Message> World::await_recv(RecvRequest request) {
  // Even a plain receive gets a bound under the crash model: blocking on a
  // peer the detector has declared dead is turned into a loud error (and
  // the liveness net turns any remaining cross-wait into one too) instead
  // of a silent world deadlock.
  sim::Time deadline = sim::kTimeInfinity;
  if (detector_ && !request->complete && request->src >= 0 && request->owner >= 0) {
    deadline = std::min(detector_->detect_time(request->owner, request->src),
                        sim_.now() + kLivenessTimeout);
  }
  co_await block_on_recv(request, deadline);
  if (request->owner_crashed) throw RankCrashed{request->owner, sim_.now()};
  if (request->timed_out) {
    throw std::runtime_error("recv on rank " + std::to_string(request->owner) + " from rank " +
                             std::to_string(request->src) +
                             " abandoned: peer declared dead (use the fault-tolerant receive "
                             "path for quorum collectives)");
  }
  co_await sim_.delay(network_.recv_overhead());
  co_return std::move(request->msg);
}

sim::Task<std::optional<Message>> World::await_recv_until(RecvRequest request,
                                                          sim::Time deadline) {
  co_await block_on_recv(request, deadline);
  if (request->owner_crashed) throw RankCrashed{request->owner, sim_.now()};
  if (request->timed_out) co_return std::nullopt;
  co_await sim_.delay(network_.recv_overhead());
  co_return std::move(request->msg);
}

sim::Task<Message> World::p2p_recv(int me, int src, std::int64_t tag) {
  co_return co_await await_recv(p2p_irecv(me, src, tag));
}

SendRequest World::p2p_isend(int src, int dst, std::int64_t tag, std::vector<double> data,
                             std::int64_t bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("p2p_isend: bad destination rank");
  check_crash(src);
  if (bytes <= 0) bytes = static_cast<std::int64_t>(data.size() * sizeof(double));
  if (bytes <= 0) bytes = 8;
  auto request = std::make_shared<SendState>();
  // The NIC takes over immediately; the rank's own overhead marks when the
  // send buffer is reusable (MPI_Wait on the isend).
  request->complete_at = sim_.now() + network_.send_overhead();
  dispatch_message(src, dst, std::move(data), bytes, tag, request->complete_at);
  return request;
}

sim::Task<void> World::await_send(SendRequest request) {
  const sim::Time now = sim_.now();
  if (request->complete_at > now) co_await sim_.delay(request->complete_at - now);
}

// ------------------------------------------------------------------ burst --

struct World::BurstState {
  int client_rank = -1;
  int ref_rank = -1;
  vclock::Clock* client_clock = nullptr;
  vclock::Clock* ref_clock = nullptr;
  sim::Time client_ready = 0.0;
  sim::Time ref_ready = 0.0;
  bool first_is_client = false;
  std::coroutine_handle<> first_handle = nullptr;
  int nexchanges = 0;
  std::int64_t bytes = 0;
  BurstResult result;
  sim::Time client_done = 0.0;
  sim::Time ref_done = 0.0;
};

std::uint64_t World::pair_key(int a, int b, int world_size) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * static_cast<std::uint64_t>(world_size) + hi;
}

void World::synthesize_burst(BurstState& st) {
  // Attempts per exchange under an active fault plan: 1 original +
  // (kMaxPingAttempts - 1) retries; an exchange still unanswered after that
  // is abandoned and reported via BurstResult::lost (the sync layer marks
  // the rank degraded rather than hanging).
  constexpr int kMaxPingAttempts = 3;
  constexpr double kPingTimeoutFactor = 10.0;  // of the expected round-trip time

  const double o_s = network_.send_overhead();
  const double o_r = network_.recv_overhead();
  sim::Time tc = st.client_ready;  // client's process-time cursor
  sim::Time tr = st.ref_ready;     // reference's process-time cursor
  const bool faulty = fault_ && fault_->net_active();
  const bool pausing = fault_ && fault_->pause_active();
  const bool crashy = detector_ != nullptr;
  // Crash-era bounds for this pair: the client stops once it would run past
  // its own crash time, and gives up on the whole burst once its detector
  // declares the reference dead (individual pings obey the uniform
  // crash-delivery rule below).
  sim::Time client_crash = sim::kTimeInfinity;
  sim::Time abandon_at = sim::kTimeInfinity;
  if (crashy) {
    client_crash = fault_->crash_time(st.client_rank);
    abandon_at = detector_->detect_time(st.client_rank, st.ref_rank);
  }
  const LinkLevel level = network_.classify(st.client_rank, st.ref_rank);
  const double timeout =
      kPingTimeoutFactor * (2.0 * network_.expected_delay(level, st.bytes) + 2.0 * (o_s + o_r));
  st.result.requested = st.nexchanges;
  st.result.samples.reserve(static_cast<std::size_t>(st.nexchanges));
  bool aborted = false;
  for (int i = 0; i < st.nexchanges && !aborted; ++i) {
    for (int attempt = 0;; ++attempt) {
      if (crashy && (tc >= client_crash || tc >= abandon_at)) {
        // Dead client, or reference declared dead: this exchange and every
        // remaining one are lost; the waiter resolves the crash on resume.
        st.result.lost += st.nexchanges - i;
        aborted = true;
        break;
      }
      if (pausing) tc = fault_->release_time(st.client_rank, tc);
      const sim::Time attempt_start = tc;
      // The timeout guards against message loss, not partner lateness: the
      // reference may legitimately enter the burst long after the client
      // (Alg. 6 sleeps wait_time between rounds; serial schedules like JK
      // make client j wait for j-1 predecessors), so the deadline only
      // starts once both peers could be exchanging messages.
      const sim::Time deadline = std::max(attempt_start, st.ref_ready) + timeout;
      PingSample s;
      s.client_send = st.client_clock->at(tc);
      fault::NetFaultDecision ping_fd;
      const sim::Time arrive_ref = network_.deliver_time_uncontended(
          st.client_rank, st.ref_rank, st.bytes, tc + o_s, faulty ? &ping_fd : nullptr);
      bool timed_out = ping_fd.drop;
      if (crashy && !crash_delivered(st.client_rank, st.ref_rank, arrive_ref)) timed_out = true;
      if (!timed_out) {
        sim::Time stamp_time = std::max(arrive_ref, tr) + o_r;
        if (pausing) stamp_time = fault_->release_time(st.ref_rank, stamp_time);
        s.ref_reply = st.ref_clock->at(stamp_time);
        const sim::Time reply_depart = stamp_time + o_s;
        tr = reply_depart;  // the reference served this ping whether or not the pong survives
        fault::NetFaultDecision pong_fd;
        const sim::Time arrive_client = network_.deliver_time_uncontended(
            st.ref_rank, st.client_rank, st.bytes, reply_depart, faulty ? &pong_fd : nullptr);
        // `faulty` gate: fault-free this branch must be taken unconditionally
        // so the synthesized schedule stays bit-identical to the seed model.
        // The crash rule also covers the reference dying mid-service: a
        // reply departing after its crash necessarily arrives after it.
        if (pong_fd.drop || (faulty && arrive_client + o_r > deadline) ||
            (crashy && !crash_delivered(st.ref_rank, st.client_rank, arrive_client))) {
          timed_out = true;  // pong lost, or it arrived after the client gave up
        } else {
          const sim::Time recv_time = arrive_client + o_r;
          s.client_recv = st.client_clock->at(recv_time);
          st.result.samples.push_back(s);
          if (rtt_metric_) rtt_metric_->observe(recv_time - attempt_start);
          tc = recv_time;
          break;
        }
      }
      tc = deadline;  // client resumes at its timeout deadline
      if (attempt + 1 >= kMaxPingAttempts) {
        ++st.result.lost;
        break;
      }
      ++st.result.retries;
    }
  }
  st.client_done = tc;
  st.ref_done = tr;
  if (pingpong_counter_) pingpong_counter_->inc(static_cast<std::uint64_t>(st.nexchanges));
  if (faulty) {
    if (burst_retry_metric_) burst_retry_metric_->observe(st.result.retries);
    if (lost_exchange_metric_ && st.result.lost > 0) {
      lost_exchange_metric_->inc(static_cast<std::uint64_t>(st.result.lost));
    }
  }
  if (trace::Tracer* tracer = trace::active_tracer()) {
    // Explicit timestamps: the burst is synthesized, so "now" would misplace
    // it.  This span is where HCA3 spends its RTT budget.
    tracer->record_complete(st.client_rank, trace::Category::kNet, "pingpong_burst",
                            st.client_ready, st.client_done - st.client_ready, st.nexchanges);
  }
}

// Resolves a first-arriver wait the partner will never complete: at `when`
// (the waiter's own crash time, or the moment its detector declares the
// partner dead) the burst is reported fully lost and the waiter resumed —
// it re-checks its own crash on resume.  A burst that paired in the
// meantime cleared first_handle, making this a no-op.
sim::Task<void> World::burst_watchdog(std::shared_ptr<BurstState> st, std::uint64_t key,
                                      sim::Time when) {
  if (when > sim_.now()) co_await sim_.delay(when - sim_.now());
  if (!st->first_handle) co_return;
  st->result.requested = st->nexchanges;
  st->result.lost = st->nexchanges;
  if (fault_) fault_->count_crash_drop();
  const auto it = bursts_.find(key);
  if (it != bursts_.end() && it->second == st) bursts_.erase(it);
  sim_.schedule_at(sim_.now(), st->first_handle);
  st->first_handle = nullptr;
}

sim::Task<BurstResult> World::pingpong_burst(int me, int partner, bool i_am_client,
                                             vclock::Clock& my_clock, int nexchanges,
                                             std::int64_t bytes) {
  if (nexchanges < 1) throw std::invalid_argument("pingpong_burst: nexchanges must be >= 1");
  if (me == partner) throw std::invalid_argument("pingpong_burst: self ping-pong");
  check_crash(me);
  const std::uint64_t key = pair_key(me, partner, size());
  const auto it = bursts_.find(key);

  // NOTE: awaiters with non-trivially-destructible members must be named
  // locals, never co_await'ed as brace-init temporaries: GCC 12 destroys such
  // temporaries twice at the resume point (sibling of the "array used as
  // initializer" bug; see util/vec.hpp).
  struct SuspendForPartner {
    std::shared_ptr<BurstState> st;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { st->first_handle = h; }
    void await_resume() const noexcept {}
  };
  struct ResumeAt {
    sim::Simulation* sim;
    sim::Time when;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_at(when, h);
    }
    void await_resume() const noexcept {}
  };

  if (it == bursts_.end()) {
    auto st = std::make_shared<BurstState>();
    st->nexchanges = nexchanges;
    st->bytes = bytes;
    st->first_is_client = i_am_client;
    if (i_am_client) {
      st->client_rank = me;
      st->client_clock = &my_clock;
      st->client_ready = sim_.now();
    } else {
      st->ref_rank = me;
      st->ref_clock = &my_clock;
      st->ref_ready = sim_.now();
    }
    bursts_[key] = st;
    if (detector_) {
      const sim::Time partner_dead = detector_->detect_time(me, partner);
      if (partner_dead <= sim_.now()) {
        // Partner already declared dead: resolve as fully lost without
        // suspending (a watchdog due "now" would fire before the suspend
        // below publishes the waiter handle).
        bursts_.erase(key);
        st->result.requested = nexchanges;
        st->result.lost = nexchanges;
        fault_->count_crash_drop();
        co_return st->result;
      }
      // check_crash above guarantees now < own crash time, so both watchdogs
      // fire strictly in the future, after the waiter handle is published.
      const sim::Time own_crash = fault_->crash_time(me);
      if (own_crash < sim::kTimeInfinity) sim_.spawn(burst_watchdog(st, key, own_crash));
      if (partner_dead < sim::kTimeInfinity) sim_.spawn(burst_watchdog(st, key, partner_dead));
    }
    SuspendForPartner wait_for_partner{st};
    co_await wait_for_partner;
    check_crash(me);
    co_return st->result;
  }

  auto st = it->second;
  bursts_.erase(it);
  if (st->nexchanges != nexchanges || st->first_is_client == i_am_client) {
    throw std::logic_error("pingpong_burst: mismatched burst call between partners");
  }
  if (i_am_client) {
    st->client_rank = me;
    st->client_clock = &my_clock;
    st->client_ready = sim_.now();
  } else {
    st->ref_rank = me;
    st->ref_clock = &my_clock;
    st->ref_ready = sim_.now();
  }
  synthesize_burst(*st);
  sim_.schedule_at(st->first_is_client ? st->client_done : st->ref_done, st->first_handle);
  st->first_handle = nullptr;  // burst watchdogs must not resume it again
  ResumeAt resume_at{&sim_, i_am_client ? st->client_done : st->ref_done};
  co_await resume_at;
  check_crash(me);
  co_return st->result;
}

}  // namespace hcs::simmpi
