// Hierarchical LogGP-style network model.
//
// Message delay depends on where source and destination sit in the topology
// (intra-socket < intra-node < inter-node).  Inter-node messages additionally
// serialize through per-node NIC egress/ingress resources; the queueing this
// produces under bursty traffic is what differentiates the barrier algorithms
// in the paper's Fig. 8 (DESIGN.md §4.5).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topology/params.hpp"
#include "topology/topology.hpp"
#include "trace/metrics.hpp"

namespace hcs::simmpi {

enum class LinkLevel { kIntraSocket, kIntraNode, kInterNode };

class NetworkModel {
 public:
  NetworkModel(const topology::ClusterTopology& topo, const topology::NetworkParams& params,
               std::uint64_t seed);

  LinkLevel classify(int src_rank, int dst_rank) const;

  const topology::LinkParams& link(LinkLevel level) const;

  /// Samples the one-way wire delay (no NIC queueing, no CPU overheads).
  sim::Time sample_delay(LinkLevel level, std::int64_t bytes);

  /// Full path: earliest arrival of a message handed to the network at
  /// `depart_ready`, including NIC egress/ingress serialization for
  /// inter-node traffic.  Mutates NIC state.
  sim::Time deliver_time(int src_rank, int dst_rank, std::int64_t bytes, sim::Time depart_ready);

  /// As deliver_time but without touching NIC state — used by the ping-pong
  /// burst fast path, whose pairwise traffic is modelled as uncontended.
  sim::Time deliver_time_uncontended(int src_rank, int dst_rank, std::int64_t bytes,
                                     sim::Time depart_ready);

  double send_overhead() const { return params_.send_overhead; }
  double recv_overhead() const { return params_.recv_overhead; }

  /// Expected (mean) one-way delay for `bytes`, used by latency estimators.
  double expected_delay(LinkLevel level, std::int64_t bytes) const;

 private:
  // Metric handles resolved once at construction against the registry that
  // was active then (install metrics before building the World); null when
  // metrics are off, so the per-message cost is one branch.
  struct LevelMetrics {
    trace::Counter* messages = nullptr;
    trace::Counter* bytes = nullptr;
    trace::HistogramMetric* delay = nullptr;
  };
  void count_delivery(LinkLevel level, std::int64_t bytes, sim::Time delay);

  const topology::ClusterTopology* topo_;
  topology::NetworkParams params_;
  sim::Rng rng_;
  std::vector<sim::Time> egress_free_;   // per node
  std::vector<sim::Time> ingress_free_;  // per node
  LevelMetrics metrics_[3];              // indexed by LinkLevel
};

}  // namespace hcs::simmpi
