// Hierarchical LogGP-style network model.
//
// Message delay depends on where source and destination sit in the topology
// (intra-socket < intra-node < inter-node).  Inter-node messages additionally
// serialize through per-node NIC egress/ingress resources; the queueing this
// produces under bursty traffic is what differentiates the barrier algorithms
// in the paper's Fig. 8 (DESIGN.md §4.5).
//
// With a fault::FaultInjector attached (see set_fault_injector), each
// delivery first consults the injector.  Reliable-path deliveries
// (deliver_time) absorb drops through bounded retransmission — every lost
// attempt occupies the wire and NIC like a real send, the sender times out,
// and the final attempt is always delivered, so transport losses can never
// deadlock the MPI layer.  The ping-pong burst fast path
// (deliver_time_uncontended) instead reports the raw decision to the caller,
// which implements its own timeout + retry (World::synthesize_burst).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault_injector.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topology/params.hpp"
#include "topology/topology.hpp"
#include "trace/metrics.hpp"

namespace hcs::simmpi {

enum class LinkLevel { kIntraSocket, kIntraNode, kInterNode };

/// Per-delivery fault summary reported by deliver_time when an injector is
/// active: how many retransmissions the reliable path needed, and whether
/// the delivered message should additionally be duplicated by the caller.
struct DeliveryFaults {
  int retransmits = 0;
  bool duplicate = false;
};

class NetworkModel {
 public:
  /// Attempts per message on the reliable path: 1 original + kMaxRetransmits
  /// retries, the last of which is always delivered.
  static constexpr int kMaxRetransmits = 5;

  NetworkModel(const topology::ClusterTopology& topo, const topology::NetworkParams& params,
               std::uint64_t seed);

  LinkLevel classify(int src_rank, int dst_rank) const;

  const topology::LinkParams& link(LinkLevel level) const;

  /// Samples the one-way wire delay (no NIC queueing, no CPU overheads)
  /// from the model's own stream.  Standalone/test entry point; the World
  /// paths all draw from per-channel streams instead.
  sim::Time sample_delay(LinkLevel level, std::int64_t bytes);

  /// As above but drawing from the caller-supplied stream.
  sim::Time sample_delay(LinkLevel level, std::int64_t bytes, sim::Rng& rng);

  /// The (src_rank -> dst_rank) channel's private delay stream, created on
  /// first use.  Keying randomness by channel — rather than by global draw
  /// order — is what makes delays shard-count-invariant: a channel's draws
  /// follow the sender's timeline only, and senders never migrate between
  /// shards (docs/parallel-simulation.md).  A channel is only ever touched
  /// from its sender's shard, so no locking.
  sim::Rng& channel_rng(int src_rank, int dst_rank);

  /// Full path: earliest arrival of a message handed to the network at
  /// `depart_ready`, including NIC egress/ingress serialization for
  /// inter-node traffic.  Mutates NIC state.  When `faults` is non-null and
  /// a fault injector is active, drops are absorbed by retransmission and
  /// the summary is written to *faults; a null `faults` delivers
  /// fault-blind (used for the second copy of a duplicated message).
  sim::Time deliver_time(int src_rank, int dst_rank, std::int64_t bytes, sim::Time depart_ready,
                         DeliveryFaults* faults = nullptr);

  /// As deliver_time but without touching NIC state — used by the ping-pong
  /// burst fast path, whose pairwise traffic is modelled as uncontended.
  /// When `decision` is non-null and an injector is active, the injector's
  /// verdict is written there (drop means the returned arrival time is moot
  /// and the caller must handle the loss itself).
  sim::Time deliver_time_uncontended(int src_rank, int dst_rank, std::int64_t bytes,
                                     sim::Time depart_ready,
                                     fault::NetFaultDecision* decision = nullptr);

  /// Sender half of the split inter-node path used by the sharded engine:
  /// NIC egress serialization + wire delay, drawn from the sender's channel
  /// stream.  Returns the time the message reaches the destination NIC port
  /// (before ingress admission).  Only touches sender-side state, so shards
  /// may call it concurrently for disjoint senders.  When `decision` is
  /// non-null its factor/extra stretch the wire delay; a dropped message
  /// still occupies egress and the returned port time is where it was lost.
  sim::Time egress_to_wire(int src_rank, int dst_rank, std::int64_t bytes, sim::Time depart_ready,
                           const fault::NetFaultDecision* decision = nullptr);

  /// Receiver half: admits a message that reached `dst_rank`'s NIC port at
  /// `port_time`, serializing through ingress and recording the delivery
  /// metric against `depart_ready` (hand-off to arrival, as deliver_time
  /// does).  Called in deterministic merge order at window boundaries.
  sim::Time ingress_admit(int dst_rank, std::int64_t bytes, sim::Time port_time,
                          sim::Time depart_ready);

  /// Reliable sender-side path for inter-node traffic: the same bounded
  /// retransmission loop as deliver_time (each lost attempt occupies egress
  /// and the wire; the last attempt always survives the fabric) but stopping
  /// at the destination NIC port.  As with deliver_time, a null `faults`
  /// runs fault-blind (duplicate copies).
  sim::Time transit_time(int src_rank, int dst_rank, std::int64_t bytes, sim::Time depart_ready,
                         DeliveryFaults* faults = nullptr);

  double send_overhead() const { return params_.send_overhead; }
  double recv_overhead() const { return params_.recv_overhead; }

  /// Conservative-window lookahead for the sharded engine: every inter-node
  /// message handed to the network at time t reaches the destination NIC
  /// port no earlier than t + this bound (base latency; jitter/spikes/fault
  /// stretches only add).
  double min_inter_node_latency() const { return params_.inter_node.base_latency; }

  /// Expected (mean) one-way delay for `bytes`, used by latency estimators.
  double expected_delay(LinkLevel level, std::int64_t bytes) const;

  /// Sender-side timeout before a retransmission on the reliable path: a
  /// conservative multiple of the expected one-way delay.
  double retransmit_timeout(LinkLevel level, std::int64_t bytes) const;

  /// Attaches the World's fault injector (null detaches).  Without one, all
  /// paths behave exactly as the fault-free model.
  void set_fault_injector(fault::FaultInjector* injector) noexcept { injector_ = injector; }

  /// Re-resolves the per-delivery metric handles against one registry per
  /// shard (null entries allowed — metrics off).  Deliveries recorded on a
  /// shard worker thread land in that shard's registry (indexed by
  /// sim::current_shard()); the World merges registries deterministically.
  void bind_shards(const std::vector<trace::MetricsRegistry*>& registries);

 private:
  // Metric handles resolved once at construction against the registry that
  // was active then (install metrics before building the World); null when
  // metrics are off, so the per-message cost is one branch.  Slot 0 of
  // shard_metrics_; bind_shards replaces the table with per-shard handles.
  struct LevelMetrics {
    trace::Counter* messages = nullptr;
    trace::Counter* bytes = nullptr;
    trace::HistogramMetric* delay = nullptr;
  };
  struct ShardMetrics {
    LevelMetrics levels[3];  // indexed by LinkLevel
    trace::Counter* retransmits = nullptr;
  };
  static ShardMetrics resolve_metrics(trace::MetricsRegistry* registry);
  void count_delivery(LinkLevel level, std::int64_t bytes, sim::Time delay);

  /// One delivery attempt; `decision` (nullable) scales/extends the sampled
  /// delay and, on drop, skips ingress occupancy and delivery accounting.
  sim::Time deliver_attempt(LinkLevel level, int src_rank, int dst_rank, std::int64_t bytes,
                            sim::Time depart_ready, const fault::NetFaultDecision* decision);

  const topology::ClusterTopology* topo_;
  topology::NetworkParams params_;
  sim::Rng rng_;                 // standalone sample_delay() only
  std::uint64_t channel_seed_;   // keys the per-channel streams
  std::vector<std::map<int, sim::Rng>> channel_rngs_;  // [src_rank][dst_rank]
  std::vector<sim::Time> egress_free_;   // per node; sender-shard state
  std::vector<sim::Time> ingress_free_;  // per node; receiver-side state
  std::vector<ShardMetrics> shard_metrics_;  // size >= 1; [sim::current_shard()]
  fault::FaultInjector* injector_ = nullptr;
};

}  // namespace hcs::simmpi
