#include "simmpi/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcs::simmpi {

std::string to_string(BarrierAlgo a) {
  switch (a) {
    case BarrierAlgo::kLinear: return "linear";
    case BarrierAlgo::kTree: return "tree";
    case BarrierAlgo::kDoubleRing: return "double ring";
    case BarrierAlgo::kBruck: return "bruck";
    case BarrierAlgo::kRecursiveDoubling: return "rec. doubling";
  }
  return "?";
}

std::string to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling: return "rec. doubling";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kReduceBcast: return "reduce+bcast";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
  }
  return "?";
}

const std::vector<BarrierAlgo>& all_barrier_algos() {
  static const std::vector<BarrierAlgo> algos = {
      BarrierAlgo::kBruck, BarrierAlgo::kDoubleRing, BarrierAlgo::kRecursiveDoubling,
      BarrierAlgo::kTree, BarrierAlgo::kLinear};
  return algos;
}

double apply_op(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

void accumulate(ReduceOp op, std::vector<double>& into, const std::vector<double>& from) {
  if (into.size() != from.size()) {
    throw std::invalid_argument("accumulate: mismatched reduction lengths (" +
                                std::to_string(into.size()) + " vs " +
                                std::to_string(from.size()) + ")");
  }
  for (std::size_t i = 0; i < into.size(); ++i) into[i] = apply_op(op, into[i], from[i]);
}

}  // namespace hcs::simmpi
