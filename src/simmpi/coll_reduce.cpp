// Reduce algorithms (commutative operations).
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> reduce_binomial(Comm& comm, std::vector<double> data, ReduceOp op,
                                               int root, std::int64_t wire_bytes) {
  const int p = comm.size();
  const int relative = detail::rel(comm.rank(), root, p);
  const std::size_t unit = data.size();
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int partner_rel = relative | mask;
      if (partner_rel < p) {
        std::optional<Message> msg =
            co_await comm.recv_ft(detail::abs_rank(partner_rel, root, p), comm.collective_tag(0));
        // A dead subtree contributes the identity; the reduction still
        // completes over the surviving quorum.
        if (msg) accumulate(op, data, msg->data);
      }
    } else {
      const int parent_rel = relative & ~mask;
      co_await comm.send(detail::abs_rank(parent_rel, root, p), comm.collective_tag(0), data,
                         detail::wire_size(wire_bytes, unit));
      co_return std::vector<double>{};
    }
  }
  co_return data;  // only the root reaches here
}

sim::Task<std::vector<double>> reduce_linear(Comm& comm, std::vector<double> data, ReduceOp op,
                                             int root, std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  if (r != root) {
    co_await comm.send(root, comm.collective_tag(0), data,
                       detail::wire_size(wire_bytes, data.size()));
    co_return std::vector<double>{};
  }
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    std::optional<Message> msg = co_await comm.recv_ft(src, comm.collective_tag(0));
    if (msg) accumulate(op, data, msg->data);
  }
  co_return data;
}

}  // namespace

sim::Task<std::vector<double>> reduce(Comm& comm, std::vector<double> data, ReduceOp op, int root,
                                      ReduceAlgo algo, std::int64_t wire_bytes) {
  detail::check_root(comm, root);
  comm.advance_collective();
  if (comm.size() == 1) co_return data;
  switch (algo) {
    case ReduceAlgo::kBinomial:
      co_return co_await reduce_binomial(comm, std::move(data), op, root, wire_bytes);
    case ReduceAlgo::kLinear:
      co_return co_await reduce_linear(comm, std::move(data), op, root, wire_bytes);
  }
  co_return data;
}

}  // namespace hcs::simmpi
