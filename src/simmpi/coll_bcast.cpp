// Broadcast algorithms.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> bcast_binomial(Comm& comm, std::vector<double> data, int root,
                                              std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int relative = detail::rel(r, root, p);
  const std::size_t unit = data.size();

  int mask = 1;
  while (mask < p) {
    if ((relative & mask) != 0) {
      const int src = detail::abs_rank(relative - mask, root, p);
      std::optional<Message> msg = co_await comm.recv_ft(src, comm.collective_tag(0));
      // A dead parent orphans this subtree: forward the (unchanged) input so
      // descendants still unblock; the sync layer flags the stale payload.
      if (msg) data = std::move(msg->data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = detail::abs_rank(relative + mask, root, p);
      co_await comm.send(dst, comm.collective_tag(0), data,
                         detail::wire_size(wire_bytes, unit == 0 ? data.size() : unit));
    }
    mask >>= 1;
  }
  co_return data;
}

sim::Task<std::vector<double>> bcast_linear(Comm& comm, std::vector<double> data, int root,
                                            std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  if (r == root) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == root) continue;
      co_await comm.send(dst, comm.collective_tag(0), data,
                         detail::wire_size(wire_bytes, data.size()));
    }
    co_return data;
  }
  std::optional<Message> msg = co_await comm.recv_ft(root, comm.collective_tag(0));
  if (msg) data = std::move(msg->data);
  co_return data;
}

sim::Task<std::vector<double>> bcast_chain(Comm& comm, std::vector<double> data, int root,
                                           std::int64_t wire_bytes) {
  const int p = comm.size();
  const int relative = detail::rel(comm.rank(), root, p);
  if (relative > 0) {
    std::optional<Message> msg = co_await comm.recv_ft(detail::abs_rank(relative - 1, root, p),
                                                       comm.collective_tag(0));
    if (msg) data = std::move(msg->data);
  }
  if (relative + 1 < p) {
    co_await comm.send(detail::abs_rank(relative + 1, root, p), comm.collective_tag(0), data,
                       detail::wire_size(wire_bytes, data.size()));
  }
  co_return data;
}

// Van de Geijn: binomial-scatter the payload into p chunks, then ring-
// allgather them — the large-message broadcast in MPICH and Open MPI.
sim::Task<std::vector<double>> bcast_scatter_allgather(Comm& comm, std::vector<double> data,
                                                       int root, std::int64_t wire_bytes) {
  const int p = comm.size();
  // Non-roots do not know the payload size; announce it down a binomial
  // tree first (MPI proper knows the count from the call signature — this
  // tiny message models that metadata instead).
  std::vector<double> size_msg;
  if (comm.rank() == root) size_msg.push_back(static_cast<double>(data.size()));
  size_msg = co_await bcast_binomial(comm, std::move(size_msg), root, 8);
  // Orphaned subtrees never learn the size; fall back to zero so the
  // scatter/allgather passes below still run (with empty blocks) and finish.
  const auto n = size_msg.empty() || !(size_msg.front() >= 0.0)
                     ? std::size_t{0}
                     : static_cast<std::size_t>(size_msg.front());

  const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
  if (comm.rank() == root) data.resize(chunk * static_cast<std::size_t>(p), 0.0);
  const std::int64_t chunk_wire =
      wire_bytes > 0 ? std::max<std::int64_t>(1, wire_bytes / p) : 0;
  std::vector<double> mine = co_await scatter(comm, std::move(data), chunk, root,
                                              ScatterAlgo::kBinomial, chunk_wire);
  std::vector<double> full =
      co_await allgather(comm, std::move(mine), AllgatherAlgo::kRing, chunk_wire);
  full.resize(n);
  co_return full;
}

}  // namespace

sim::Task<std::vector<double>> bcast(Comm& comm, std::vector<double> data, int root,
                                     BcastAlgo algo, std::int64_t wire_bytes) {
  HCS_TRACE_SCOPE(Coll, comm.my_world_rank(), "bcast", wire_bytes);
  detail::check_root(comm, root);
  comm.advance_collective();
  if (comm.size() == 1) co_return data;
  switch (algo) {
    case BcastAlgo::kBinomial:
      co_return co_await bcast_binomial(comm, std::move(data), root, wire_bytes);
    case BcastAlgo::kLinear:
      co_return co_await bcast_linear(comm, std::move(data), root, wire_bytes);
    case BcastAlgo::kChain:
      co_return co_await bcast_chain(comm, std::move(data), root, wire_bytes);
    case BcastAlgo::kScatterAllgather:
      co_return co_await bcast_scatter_allgather(comm, std::move(data), root, wire_bytes);
  }
  co_return data;
}

}  // namespace hcs::simmpi
