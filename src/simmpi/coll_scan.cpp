// Inclusive prefix reduction (MPI_Scan) algorithms.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> scan_linear(Comm& comm, std::vector<double> data, ReduceOp op,
                                           std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::int64_t wire = detail::wire_size(wire_bytes, data.size());
  if (r > 0) {
    std::optional<Message> msg = co_await comm.recv_ft(r - 1, comm.collective_tag(0));
    // prefix(r) = prefix(r-1) op x_r; ops are commutative here.  A dead
    // predecessor contributes the identity and the chain keeps moving.
    if (msg) accumulate(op, data, msg->data);
  }
  if (r + 1 < p) {
    co_await comm.send(r + 1, comm.collective_tag(0), data, wire);
  }
  co_return data;
}

// Recursive doubling: log2(p) rounds; `val` accumulates the reduction of a
// growing suffix window ending at this rank, `result` the full prefix.
sim::Task<std::vector<double>> scan_recursive_doubling(Comm& comm, std::vector<double> data,
                                                       ReduceOp op, std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::int64_t wire = detail::wire_size(wire_bytes, data.size());
  std::vector<double> val = data;     // op over ranks (r - 2^k + 1 .. r)
  std::vector<double> result = data;  // op over ranks (0 .. r)
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const std::int64_t tag = comm.collective_tag(round);
    if (r + mask < p) co_await comm.send(r + mask, tag, val, wire);
    if (r - mask >= 0) {
      std::optional<Message> msg = co_await comm.recv_ft(r - mask, tag);
      if (msg) {
        accumulate(op, val, msg->data);
        accumulate(op, result, msg->data);
      }
    }
  }
  co_return result;
}

}  // namespace

sim::Task<std::vector<double>> scan(Comm& comm, std::vector<double> data, ReduceOp op,
                                    ScanAlgo algo, std::int64_t wire_bytes) {
  comm.advance_collective();
  if (comm.size() == 1) co_return data;
  switch (algo) {
    case ScanAlgo::kLinear:
      co_return co_await scan_linear(comm, std::move(data), op, wire_bytes);
    case ScanAlgo::kRecursiveDoubling:
      co_return co_await scan_recursive_doubling(comm, std::move(data), op, wire_bytes);
  }
  co_return data;
}

}  // namespace hcs::simmpi
