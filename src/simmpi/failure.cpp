#include "simmpi/failure.hpp"

#include <algorithm>

#include "simmpi/network.hpp"

namespace hcs::simmpi {

const char* to_string(PeerStatus status) {
  switch (status) {
    case PeerStatus::kAlive: return "alive";
    case PeerStatus::kSuspected: return "suspected";
    case PeerStatus::kDead: return "dead";
    case PeerStatus::kRecovered: return "recovered";
  }
  return "?";
}

FailureDetector::FailureDetector(const fault::FaultInjector& injector, const NetworkModel& net,
                                 int nranks)
    : injector_(&injector), nranks_(nranks) {
  // A real heartbeat daemon probes at a small multiple of the worst-case
  // small-message round-trip so in-time replies never look like misses.
  const double rtt = 2.0 * net.expected_delay(LinkLevel::kInterNode, 8) +
                     2.0 * (net.send_overhead() + net.recv_overhead());
  probe_period_ = 8.0 * rtt;
  detection_latency_ = probe_period_ * static_cast<double>((1 << kProbeMisses) - 1);
  first_event_ = sim::kTimeInfinity;
  for (int r = 0; r < nranks_; ++r) {
    first_event_ = std::min(first_event_, injector_->crash_time(r));
    for (int p = r + 1; p < nranks_; ++p) {
      first_event_ = std::min(first_event_, injector_->link_down_time(r, p));
    }
  }
}

PeerStatus FailureDetector::status(int observer, int peer, sim::Time now) const noexcept {
  if (observer == peer) return PeerStatus::kAlive;
  // Link cuts are permanent, so they classify against the cut instant alone
  // (with both a cut and a crash, the thresholds combine to exactly the old
  // min(crash, cut) event time).
  PeerStatus link_status = PeerStatus::kAlive;
  const sim::Time cut = injector_->link_down_time(observer, peer);
  if (cut < sim::kTimeInfinity) {
    if (now >= cut + detection_latency_) return PeerStatus::kDead;
    if (now >= cut + probe_period_) link_status = PeerStatus::kSuspected;
  }
  // Walk the peer's down intervals in order.  Window k becomes visible at
  // begin + P (first missed probe), declares dead at begin + latency, and
  // clears — dead or not — one probe period after the restart.
  PeerStatus churn_status = PeerStatus::kAlive;
  const int windows = injector_->incarnation_count(peer) - 1;
  for (int k = 0; k < windows; ++k) {
    const sim::Time begin = injector_->up_end(peer, k);
    const sim::Time end = injector_->up_start(peer, k + 1);
    if (now < begin + probe_period_) break;  // later windows start even later
    const sim::Time cleared =
        end >= sim::kTimeInfinity ? sim::kTimeInfinity : end + probe_period_;
    if (now >= cleared) {
      churn_status = PeerStatus::kRecovered;
      continue;
    }
    if (now >= begin + detection_latency_) return PeerStatus::kDead;
    return PeerStatus::kSuspected;
  }
  if (link_status == PeerStatus::kSuspected) return PeerStatus::kSuspected;
  return churn_status;
}

sim::Time FailureDetector::detect_time_after(int observer, int peer, sim::Time now) const noexcept {
  if (observer == peer) return sim::kTimeInfinity;
  sim::Time best = sim::kTimeInfinity;
  const sim::Time cut = injector_->link_down_time(observer, peer);
  if (cut < sim::kTimeInfinity) best = cut + detection_latency_;
  const int windows = injector_->incarnation_count(peer) - 1;
  for (int k = 0; k < windows; ++k) {
    const sim::Time begin = injector_->up_end(peer, k);
    const sim::Time end = injector_->up_start(peer, k + 1);
    const sim::Time dead_begin = begin + detection_latency_;
    const sim::Time dead_end =
        end >= sim::kTimeInfinity ? sim::kTimeInfinity : end + probe_period_;
    if (dead_begin >= dead_end) continue;  // rejoined before the declaration
    if (now < dead_end) {
      best = std::min(best, dead_begin);
      break;  // intervals are sorted: later windows declare later
    }
  }
  return best;
}

}  // namespace hcs::simmpi
