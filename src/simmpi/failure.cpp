#include "simmpi/failure.hpp"

#include <algorithm>

#include "simmpi/network.hpp"

namespace hcs::simmpi {

const char* to_string(PeerStatus status) {
  switch (status) {
    case PeerStatus::kAlive: return "alive";
    case PeerStatus::kSuspected: return "suspected";
    case PeerStatus::kDead: return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(const fault::FaultInjector& injector, const NetworkModel& net,
                                 int nranks)
    : injector_(&injector), nranks_(nranks) {
  // A real heartbeat daemon probes at a small multiple of the worst-case
  // small-message round-trip so in-time replies never look like misses.
  const double rtt = 2.0 * net.expected_delay(LinkLevel::kInterNode, 8) +
                     2.0 * (net.send_overhead() + net.recv_overhead());
  probe_period_ = 8.0 * rtt;
  detection_latency_ = probe_period_ * static_cast<double>((1 << kProbeMisses) - 1);
  first_event_ = sim::kTimeInfinity;
  for (int r = 0; r < nranks_; ++r) {
    first_event_ = std::min(first_event_, injector_->crash_time(r));
    for (int p = r + 1; p < nranks_; ++p) {
      first_event_ = std::min(first_event_, injector_->link_down_time(r, p));
    }
  }
}

}  // namespace hcs::simmpi
