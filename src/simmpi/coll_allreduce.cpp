// Allreduce algorithms (commutative operations).
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

// MPICH-style recursive doubling with the even/odd fold for non-powers of 2.
sim::Task<std::vector<double>> allreduce_recursive_doubling(Comm& comm, std::vector<double> data,
                                                            ReduceOp op,
                                                            std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int pof2 = detail::pof2_floor(p);
  const int rem = p - pof2;
  const std::size_t unit = data.size();
  const std::int64_t wire = detail::wire_size(wire_bytes, unit);

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      co_await comm.send(r + 1, comm.collective_tag(100), data, wire);
      newrank = -1;
    } else {
      std::optional<Message> msg = co_await comm.recv_ft(r - 1, comm.collective_tag(100));
      if (msg) accumulate(op, data, msg->data);
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    auto real = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int partner = real(newrank ^ mask);
      const std::int64_t tag = comm.collective_tag(101 + round);
      co_await comm.send(partner, tag, data, wire);
      std::optional<Message> msg = co_await comm.recv_ft(partner, tag);
      if (msg) accumulate(op, data, msg->data);
    }
  }

  if (r < 2 * rem) {
    if (r % 2 == 0) {
      std::optional<Message> msg = co_await comm.recv_ft(r + 1, comm.collective_tag(200));
      if (msg) data = std::move(msg->data);
    } else {
      co_await comm.send(r - 1, comm.collective_tag(200), data, wire);
    }
  }
  co_return data;
}

// Ring: reduce-scatter pass followed by an allgather pass, p-1 steps each.
sim::Task<std::vector<double>> allreduce_ring(Comm& comm, std::vector<double> data, ReduceOp op,
                                              std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + p) % p;
  const int right = (r + 1) % p;
  const std::size_t n = data.size();
  const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
  const std::int64_t chunk_wire = std::max<std::int64_t>(
      8, detail::wire_size(wire_bytes, n) / static_cast<std::int64_t>(p));

  auto chunk_range = [&](int idx) {
    const std::size_t lo = std::min(n, static_cast<std::size_t>(idx) * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    return std::pair<std::size_t, std::size_t>(lo, hi);
  };

  // Reduce-scatter: after step s, rank r holds the partial for chunk
  // (r - s + p) % p reduced over s+1 contributions.
  for (int step = 0; step < p - 1; ++step) {
    const int send_idx = (r - step + p) % p;
    const int recv_idx = (r - step - 1 + p) % p;
    const auto [slo, shi] = chunk_range(send_idx);
    std::vector<double> block(data.begin() + static_cast<std::ptrdiff_t>(slo),
                              data.begin() + static_cast<std::ptrdiff_t>(shi));
    const std::int64_t tag = comm.collective_tag(step);
    co_await comm.send(right, tag, std::move(block), chunk_wire);
    std::optional<Message> msg = co_await comm.recv_ft(left, tag);
    const auto [rlo, rhi] = chunk_range(recv_idx);
    if (msg && msg->data.size() == rhi - rlo) {
      for (std::size_t i = rlo; i < rhi; ++i) {
        data[i] = apply_op(op, data[i], msg->data[i - rlo]);
      }
    }
  }
  // Allgather: circulate the fully-reduced chunks.
  for (int step = 0; step < p - 1; ++step) {
    const int send_idx = (r + 1 - step + p) % p;
    const int recv_idx = (r - step + p) % p;
    const auto [slo, shi] = chunk_range(send_idx);
    std::vector<double> block(data.begin() + static_cast<std::ptrdiff_t>(slo),
                              data.begin() + static_cast<std::ptrdiff_t>(shi));
    // Phases 20000+ keep these tags disjoint from the reduce-scatter pass
    // (whose phase equals the step index, < 16384) for any supported size.
    const std::int64_t tag = comm.collective_tag(20000 + step);
    co_await comm.send(right, tag, std::move(block), chunk_wire);
    std::vector<double> got =
        detail::data_or_nan(co_await comm.recv_ft(left, tag),
                            chunk_range(recv_idx).second - chunk_range(recv_idx).first);
    const auto [rlo, rhi] = chunk_range(recv_idx);
    for (std::size_t i = rlo; i < rhi; ++i) data[i] = got[i - rlo];
  }
  co_return data;
}

// Rabenseifner: recursive-halving reduce-scatter followed by a
// recursive-doubling allgather; the large-message workhorse in MPICH and
// Open MPI.  Non-powers-of-two fold into pof2 participants first.
sim::Task<std::vector<double>> allreduce_rabenseifner(Comm& comm, std::vector<double> data,
                                                      ReduceOp op, std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int pof2 = detail::pof2_floor(p);
  const int rem = p - pof2;
  const std::size_t n = data.size();
  const std::int64_t full_wire = detail::wire_size(wire_bytes, n);

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      co_await comm.send(r + 1, comm.collective_tag(300), data, full_wire);
      newrank = -1;
    } else {
      std::optional<Message> msg = co_await comm.recv_ft(r - 1, comm.collective_tag(300));
      if (msg) accumulate(op, data, msg->data);
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    auto real = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    // Block boundaries: block b of pof2 covers [bounds[b], bounds[b+1]).
    std::vector<std::size_t> bounds(static_cast<std::size_t>(pof2) + 1);
    for (int b = 0; b <= pof2; ++b) {
      bounds[static_cast<std::size_t>(b)] =
          n * static_cast<std::size_t>(b) / static_cast<std::size_t>(pof2);
    }
    // Reduce-scatter by recursive halving: after the loop this rank owns the
    // fully reduced range [bounds[lo], bounds[hi]).
    int lo = 0, hi = pof2;
    int round = 0;
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo) / 2;
      // The partner differs in exactly the bit that splits [lo, hi).
      const int partner_real = real(newrank ^ ((hi - lo) / 2));
      const bool keep_low = newrank < mid;
      const int send_lo = keep_low ? mid : lo;
      const int send_hi = keep_low ? hi : mid;
      std::vector<double> block(
          data.begin() + static_cast<std::ptrdiff_t>(bounds[static_cast<std::size_t>(send_lo)]),
          data.begin() + static_cast<std::ptrdiff_t>(bounds[static_cast<std::size_t>(send_hi)]));
      const std::int64_t tag = comm.collective_tag(310 + round);
      co_await comm.send(partner_real, tag, std::move(block),
                         detail::wire_size(
                             wire_bytes,
                             bounds[static_cast<std::size_t>(send_hi)] -
                                 bounds[static_cast<std::size_t>(send_lo)]));
      std::optional<Message> msg = co_await comm.recv_ft(partner_real, tag);
      const int recv_lo = keep_low ? lo : mid;
      if (msg) {
        for (std::size_t i = 0; i < msg->data.size(); ++i) {
          const std::size_t at = bounds[static_cast<std::size_t>(recv_lo)] + i;
          data[at] = apply_op(op, data[at], msg->data[i]);
        }
      }
      if (keep_low) hi = mid;
      else lo = mid;
      ++round;
    }
    // Allgather by recursive doubling: mirror the halving in reverse.
    std::vector<std::pair<int, int>> ranges;  // the [lo,hi) at each level, deepest first
    {
      int l2 = 0, h2 = pof2;
      for (int dist = pof2; dist > 1; dist /= 2) {
        const int mid = l2 + (h2 - l2) / 2;
        ranges.emplace_back(l2, h2);
        if (newrank < mid) h2 = mid;
        else l2 = mid;
      }
    }
    for (int level = static_cast<int>(ranges.size()) - 1; level >= 0; --level) {
      const auto [l2, h2] = ranges[static_cast<std::size_t>(level)];
      const int mid = l2 + (h2 - l2) / 2;
      const bool keep_low = newrank < mid;
      const int partner_real = real(newrank ^ ((h2 - l2) / 2));
      const int own_lo = keep_low ? l2 : mid;
      const int own_hi = keep_low ? mid : h2;
      std::vector<double> block(
          data.begin() + static_cast<std::ptrdiff_t>(bounds[static_cast<std::size_t>(own_lo)]),
          data.begin() + static_cast<std::ptrdiff_t>(bounds[static_cast<std::size_t>(own_hi)]));
      const std::int64_t tag = comm.collective_tag(340 + level);
      co_await comm.send(partner_real, tag, std::move(block),
                         detail::wire_size(wire_bytes,
                                           bounds[static_cast<std::size_t>(own_hi)] -
                                               bounds[static_cast<std::size_t>(own_lo)]));
      std::optional<Message> msg = co_await comm.recv_ft(partner_real, tag);
      const int other_lo = keep_low ? mid : l2;
      const int other_hi = keep_low ? h2 : mid;
      std::vector<double> got = detail::data_or_nan(
          std::move(msg), bounds[static_cast<std::size_t>(other_hi)] -
                              bounds[static_cast<std::size_t>(other_lo)]);
      std::copy(got.begin(), got.end(),
                data.begin() + static_cast<std::ptrdiff_t>(bounds[static_cast<std::size_t>(other_lo)]));
    }
  }

  if (r < 2 * rem) {
    if (r % 2 == 0) {
      std::optional<Message> msg = co_await comm.recv_ft(r + 1, comm.collective_tag(390));
      if (msg) data = std::move(msg->data);
    } else {
      co_await comm.send(r - 1, comm.collective_tag(390), data, full_wire);
    }
  }
  co_return data;
}

}  // namespace

sim::Task<std::vector<double>> allreduce(Comm& comm, std::vector<double> data, ReduceOp op,
                                         AllreduceAlgo algo, std::int64_t wire_bytes) {
  HCS_TRACE_SCOPE(Coll, comm.my_world_rank(), "allreduce", wire_bytes);
  comm.advance_collective();
  if (comm.size() == 1) co_return data;
  switch (algo) {
    case AllreduceAlgo::kRecursiveDoubling:
      co_return co_await allreduce_recursive_doubling(comm, std::move(data), op, wire_bytes);
    case AllreduceAlgo::kRing:
      co_return co_await allreduce_ring(comm, std::move(data), op, wire_bytes);
    case AllreduceAlgo::kReduceBcast: {
      std::vector<double> reduced = co_await reduce(comm, std::move(data), op, 0,
                                                    ReduceAlgo::kBinomial, wire_bytes);
      co_return co_await bcast(comm, std::move(reduced), 0, BcastAlgo::kBinomial, wire_bytes);
    }
    case AllreduceAlgo::kRabenseifner:
      co_return co_await allreduce_rabenseifner(comm, std::move(data), op, wire_bytes);
  }
  co_return data;
}

}  // namespace hcs::simmpi
