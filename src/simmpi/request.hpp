// Nonblocking point-to-point requests (MPI_Isend / MPI_Irecv analogues).
//
// irecv posts a receive and returns a handle; the message may arrive and be
// matched while the rank keeps computing.  await_recv (MPI_Wait) suspends
// only if the message has not arrived yet.  isend returns immediately; its
// completion marks the moment the send buffer would be reusable (after the
// sender-side overhead).
#pragma once

#include <coroutine>
#include <memory>

#include "sim/time.hpp"
#include "simmpi/message.hpp"

namespace hcs::simmpi {

struct RecvState {
  int src = -1;
  std::int64_t tag = 0;
  int owner = -1;  // receiving rank (watchdogs under the crash model)
  bool complete = false;
  // Crash-model resolution flags (request.hpp stays trivially usable without
  // the failure detector: both remain false then).  `timed_out` means the
  // deadline watchdog fired before a match; `owner_crashed` means the
  // receiving rank's own crash time passed while it was blocked.
  bool timed_out = false;
  bool owner_crashed = false;
  Message msg;
  std::coroutine_handle<> waiter = nullptr;
};

struct SendState {
  int owner = -1;  // sending rank (routes await_send to the sender's shard)
  sim::Time complete_at = 0.0;
};

using RecvRequest = std::shared_ptr<RecvState>;
using SendRequest = std::shared_ptr<SendState>;

}  // namespace hcs::simmpi
