// World: the simulated machine plus the MPI-like process runtime.
//
// A World owns the discrete-event simulation, the network model, one shared
// HardwareClock per time source, and a mailbox per rank.  Rank programs are
// coroutines created by launch(); run() drives the event loop to completion
// and reports deadlocks (ranks still blocked with an empty event queue).
//
// The simulation is sharded (conservative PDES, docs/parallel-simulation.md):
// ranks are partitioned into per-node-group shards, each with its own
// sim::Simulation (event queue + coroutine scheduler).  run() advances all
// shards concurrently inside conservative time windows bounded by the
// network's minimum inter-node latency; inter-node messages cross shards via
// per-shard outboxes drained in a deterministic merge order at window
// boundaries, and cross-node ping-pong bursts rendezvous there too.  The
// inter-node protocol is the same at every shard count — including
// --shards 1, which runs the windows inline with no worker threads — so the
// simulated timeline is bit-identical for any number of shards.
//
// The p2p_* and pingpong_burst members are the transport primitives used by
// Comm; user code goes through Comm and the collectives API.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/shard_context.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "simmpi/failure.hpp"
#include "simmpi/message.hpp"
#include "simmpi/request.hpp"
#include "simmpi/network.hpp"
#include "topology/presets.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "vclock/clock.hpp"
#include "vclock/hardware_clock.hpp"
#include "vclock/model_bank.hpp"

namespace hcs::replay {
class ReplayFeed;
struct RecordedWorld;
}  // namespace hcs::replay

namespace hcs::simmpi {

class World;
class Comm;

/// Process-wide default shard count, used by Worlds constructed with
/// `shards = 0` (the bench binaries' --shards flag routes through here so
/// helpers that build Worlds internally don't need an extra parameter).
/// Values < 1 reset to the built-in default of 1.
void set_default_shards(int shards) noexcept;
int default_shards() noexcept;

/// Per-rank execution context handed to rank programs.
class RankCtx {
 public:
  RankCtx(World& world, int rank);
  ~RankCtx();
  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  World& world() const noexcept { return *world_; }
  int rank() const noexcept { return rank_; }
  Comm& comm_world() noexcept { return *comm_world_; }
  vclock::ClockPtr base_clock() const;
  sim::Simulation& sim() const;

  /// Rebuilds the world communicator from scratch (fresh collective
  /// sequence numbers).  Used by the churn supervisor between incarnations:
  /// a restarted rank must not resume mid-sequence tags from its previous
  /// life.
  void reset_comm();

 private:
  World* world_;
  int rank_;
  std::unique_ptr<Comm> comm_world_;
};

class World {
 public:
  /// `fault_plan` (optional) activates deterministic fault injection for
  /// this World: a private fault::FaultInjector is seeded from (seed, plan
  /// seed), so identical (machine, seed, plan) triples reproduce bit-exactly
  /// regardless of how many trials run in parallel.  An empty plan leaves
  /// every code path identical to the fault-free model.
  ///
  /// `shards` splits the event loop across that many worker threads
  /// (clamped to [1, nodes]; shards never split a node, so intra-node fast
  /// paths stay single-threaded).  0 uses the process-wide default_shards().
  /// Results are bit-identical for any value.
  World(topology::MachineConfig machine, std::uint64_t seed, fault::FaultPlan fault_plan = {},
        int shards = 0);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Shard 0's simulation.  With --shards 1 (the default) this is the whole
  /// world's event loop, which is what tests and examples drive.
  sim::Simulation& sim() noexcept { return *sims_[0]; }

  /// The simulation advancing `rank`'s timeline.
  sim::Simulation& sim_of(int rank) noexcept {
    return *sims_[static_cast<std::size_t>(shard_of_rank(rank))];
  }
  const sim::Simulation& sim_of(int rank) const noexcept {
    return *sims_[static_cast<std::size_t>(shard_of_rank(rank))];
  }

  const topology::ClusterTopology& topo() const noexcept { return machine_.topo; }
  const topology::MachineConfig& machine() const noexcept { return machine_; }
  NetworkModel& network() noexcept { return network_; }
  int size() const noexcept { return machine_.topo.total_ranks(); }

  /// Number of event-loop shards (>= 1).
  int shards() const noexcept { return nshards_; }

  /// Shard that owns `rank` (its whole node lives there).
  int shard_of_rank(int rank) const noexcept {
    return shard_of_node_[static_cast<std::size_t>(
        node_of_rank_[static_cast<std::size_t>(rank)])];
  }

  /// Conservative-window lookahead: minimum time for any inter-node message
  /// to reach the destination NIC port (docs/parallel-simulation.md).
  double lookahead() const noexcept { return lookahead_; }

  /// Fault injector for this World; null when no fault plan was given.
  fault::FaultInjector* fault_injector() noexcept { return fault_.get(); }

  /// Failure detector for this World; null unless the fault plan contains a
  /// crash or crashlink fault (so crash-free runs take zero new branches).
  const FailureDetector* failure_detector() const noexcept { return detector_.get(); }

  /// Throws RankCrashed when the crash/churn model has `rank` down — every
  /// transport operation calls this on entry and after resuming.  Under a
  /// pure crash plan is_down is exactly `now >= crash_time`, so crash-only
  /// behaviour is unchanged; under churn a restarted incarnation runs
  /// again once its down interval ends.
  void check_crash(int rank) const {
    if (detector_ && fault_->is_down(rank, sim_of(rank).now())) {
      throw RankCrashed{rank, sim_of(rank).now()};
    }
  }

  /// Membership epoch at `now` (0 when no churn plan is active): the number
  /// of fired departures/arrivals.  Pure function of the fault plan, so
  /// every rank computes the same view without messages.
  std::uint64_t membership_epoch(sim::Time now) const noexcept {
    return fault_ ? fault_->membership_epoch(now) : 0;
  }

  /// Shared hardware clock of the rank's time source.
  vclock::ClockPtr base_clock(int rank) const;

  /// SoA model storage for the rank's shard: sync algorithms append each
  /// learned LinearModel here instead of allocating a GlobalClockLM per rank
  /// (vclock/model_bank.hpp).  Shard-confined, so appends never race; the
  /// shared_ptr keeps results alive after the World is destroyed.
  const vclock::ModelBankPtr& model_bank_of(int rank) const noexcept {
    return model_banks_[static_cast<std::size_t>(shard_of_rank(rank))];
  }

  /// Total events processed across all shards so far (bench reporting).
  std::uint64_t events_processed() const noexcept { return total_events(); }

  using RankFn = std::function<sim::Task<void>(RankCtx&)>;

  /// Spawns one process per rank running `fn`.
  void launch(const RankFn& fn);

  /// Drains all shards' event loops (windowed, concurrent when shards > 1);
  /// throws on process exceptions, event-budget overrun, or deadlock
  /// (blocked processes with every queue empty).
  void run(std::uint64_t max_events = 4'000'000'000ULL);

  /// launch + run in one call.
  void run_all(const RankFn& fn, std::uint64_t max_events = 4'000'000'000ULL);

  RankCtx& ctx(int rank);

  // --- transport primitives (used by Comm; not intended for user code) ---

  sim::Task<void> p2p_send(int src, int dst, std::int64_t tag, std::vector<double> data,
                           std::int64_t bytes);
  sim::Task<Message> p2p_recv(int me, int src, std::int64_t tag);

  /// Nonblocking receive: posts the request (matching any already-arrived
  /// message) and returns immediately; complete with await_recv.
  RecvRequest p2p_irecv(int me, int src, std::int64_t tag);

  /// MPI_Wait analogue for a receive request.
  sim::Task<Message> await_recv(RecvRequest request);

  /// Bounded wait: completes the receive, or gives up at `deadline`
  /// (absolute sim time) and returns nullopt.  Throws RankCrashed if the
  /// receiving rank itself dies while blocked.  The fault-tolerant
  /// collectives build on this (Comm::recv_ft).
  sim::Task<std::optional<Message>> await_recv_until(RecvRequest request, sim::Time deadline);

  /// Nonblocking send: the message enters the network immediately; the
  /// request completes once the sender-side overhead has elapsed.
  SendRequest p2p_isend(int src, int dst, std::int64_t tag, std::vector<double> data,
                        std::int64_t bytes);

  /// MPI_Wait analogue for a send request.
  sim::Task<void> await_send(SendRequest request);

  /// Fast-path ping-pong burst between `me` and `partner` (DESIGN.md §4.3):
  /// both sides call this; per-exchange timestamps are synthesized from the
  /// same network distributions without per-message events.
  sim::Task<BurstResult> pingpong_burst(int me, int partner, bool i_am_client,
                                        vclock::Clock& my_clock, int nexchanges,
                                        std::int64_t bytes);

  /// Internal: delivery of an in-flight message (public for the messenger
  /// coroutine).
  void deliver_now(int dst, Message msg);

  // --- record / replay (docs/record-replay.md) ---

  /// Switches this World into single-rank replay mode: launch() spawns only
  /// `rank`, and every transport operation is answered from (or verified
  /// against) `feed` instead of the simulated peers.  The World must be
  /// constructed with the same (machine, seed, fault plan) as the recorded
  /// one so its deterministic models (clock parameters, failure detector)
  /// match; it must be unsharded.  The caller owns the feed and the
  /// RecordedWorld behind it; both must outlive the World.
  void attach_replay(replay::ReplayFeed* feed, int rank);

  /// True once attach_replay() was called.
  bool replaying() const noexcept { return replay_feed_ != nullptr; }

  /// Noisy clock read for rank code, record/replay aware — use via
  /// replay::observed_now().  Plain clock.now() normally; additionally logged
  /// while a Recorder is installed; answered from the log during replay.
  double clock_read_hook(int rank, vclock::Clock& clock);

 private:
  struct Mailbox {
    std::deque<Message> unexpected;
    std::vector<RecvRequest> posted;  // irecvs (and blocking recvs) in post order
    // Channel-repair state, used only while network faults are active: next
    // expected sequence number per source rank (sized lazily) and messages
    // held back for in-order (FIFO) release.
    std::vector<std::uint64_t> expected_seq;
    std::map<std::pair<int, std::uint64_t>, Message> held;
  };
  struct BurstState;

  // Adapter handed to the active tracer so spans recorded anywhere in the
  // process are stamped with the recording shard's simulated time.
  struct SimTimeSource final : trace::TimeSource {
    sim::Simulation* sim = nullptr;
    double trace_now() const override { return sim->now(); }
  };

  /// One inter-node message waiting in its sender shard's outbox: the sender
  /// already paid egress + wire (port_time is when it reaches the receiving
  /// NIC port, provably >= the end of the window it was sent in); ingress
  /// admission and delivery happen at the next window boundary, in
  /// (port_time, src, dst, order) merge order.
  struct IngressRecord {
    int src = -1;
    int dst = -1;
    sim::Time depart_ready = 0.0;  // metric baseline (hand-off to arrival)
    sim::Time port_time = 0.0;
    std::uint64_t order = 0;  // per-shard push index: deterministic tiebreak
    Message msg;
  };

  /// One side of a cross-node ping-pong burst, parked in its caller's shard
  /// until the window boundary pairs it with the partner's half.
  struct PendingHalf {
    std::uint64_t key = 0;
    bool is_client = false;
    std::shared_ptr<BurstState> st;
  };

  /// Shard-confined engine state (only the owning worker thread touches it
  /// between barriers; the coordinator drains it while workers are parked).
  struct ShardState {
    std::vector<IngressRecord> outbox;
    std::uint64_t outbox_seq = 0;
    std::vector<PendingHalf> halves;
    // Intra-node bursts pair inline exactly as in the unsharded engine.
    std::map<std::uint64_t, std::shared_ptr<BurstState>> local_bursts;
  };

  // Per-shard handles for the World's own metrics, indexed by
  // sim::current_shard() (always slot 0 when unsharded).
  struct WorldMetrics {
    trace::HistogramMetric* rtt = nullptr;
    trace::Counter* pingpongs = nullptr;
    trace::HistogramMetric* burst_retries = nullptr;
    trace::Counter* exchanges_lost = nullptr;
    trace::Counter* dup_absorbed = nullptr;
  };

  static std::uint64_t pair_key(int a, int b, int world_size);
  static WorldMetrics resolve_metrics(trace::MetricsRegistry* registry);
  WorldMetrics& my_metrics() { return world_metrics_[static_cast<std::size_t>(sim::current_shard())]; }
  void synthesize_burst(BurstState& st);
  void match_or_enqueue(int dst, Message msg);
  void dispatch_message(int src, int dst, std::vector<double> data, std::int64_t bytes,
                        std::int64_t tag, sim::Time ready);
  void push_ingress(int src, int dst, sim::Time depart_ready, sim::Time port_time, Message msg);

  /// Uniform crash-era delivery rule: a message sent src->dst exists only
  /// if it arrives while both endpoints are up and the link is up, and —
  /// under churn — both endpoints are still in the same incarnation they
  /// were in at `send` (a message from or to a previous life is stale and
  /// dropped deterministically).
  bool crash_delivered(int src, int dst, sim::Time send, sim::Time arrive) const noexcept;
  /// Runs `fn` once per up-period of a churning rank: delays to each
  /// scheduled (re)start, purges the mailbox and resets the communicator
  /// between incarnations, and records membership markers.
  sim::Task<void> churn_supervisor(RankFn fn, RankCtx& ctx);
  void purge_mailbox(int rank);
  void cancel_recv(const RecvRequest& request);
  sim::Task<void> block_on_recv(RecvRequest request, sim::Time deadline);
  sim::Task<void> recv_watchdog(RecvRequest request, sim::Time when, bool crash_kind);
  sim::Task<void> burst_watchdog(std::shared_ptr<BurstState> st, std::uint64_t key,
                                 sim::Time when, bool cross_node);

  // --- record / replay internals (world.cpp, docs/record-replay.md) ---
  void record_recv_completion(const RecvRequest& request);
  void replay_verify_send(int dst, std::int64_t tag, std::int64_t bytes,
                          const std::vector<double>& data, sim::Time ready);
  sim::Task<Message> replay_recv(RecvRequest request);
  sim::Task<std::optional<Message>> replay_recv_until(RecvRequest request);
  sim::Task<BurstResult> replay_burst(int me, int partner, bool i_am_client);
  sim::Task<void> replay_starve(int me);  // crash at recorded time, or diverge

  // --- windowed engine (world_engine section of world.cpp) ---
  sim::Task<BurstResult> pingpong_burst_local(int me, int partner, bool i_am_client,
                                              vclock::Clock& my_clock, int nexchanges,
                                              std::int64_t bytes);
  sim::Task<BurstResult> pingpong_burst_cross(int me, int partner, bool i_am_client,
                                              vclock::Clock& my_clock, int nexchanges,
                                              std::int64_t bytes);
  void drain_outboxes();          // ingress merge + delivery spawns
  void drain_burst_halves();      // cross-node rendezvous + synthesis
  bool serial_phase(std::uint64_t max_events);  // drains + next window; false = done
  std::uint64_t total_events() const noexcept;

  topology::MachineConfig machine_;
  int nshards_ = 1;
  double lookahead_ = 0.0;
  std::vector<int> node_of_rank_;   // rank -> node (cached topo.locate)
  std::vector<int> shard_of_node_;  // node -> shard (contiguous ranges)
  std::vector<std::unique_ptr<sim::Simulation>> sims_;  // one per shard
  NetworkModel network_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<FailureDetector> detector_;  // only under crash/crashlink plans
  bool seq_tracking_ = false;          // assign/enforce channel sequence numbers
  std::vector<std::uint64_t> send_seq_;  // per (src, dst), when seq_tracking_

  // Observability: the parent tracer/registry are whatever was installed on
  // the constructing thread.  When sharded, each shard gets a private tracer
  // and registry (the record paths are not thread-safe); they are absorbed /
  // merged into the parent in shard-index order by ~World, reproducing the
  // exact stream a 1-shard run records.
  trace::Tracer* parent_tracer_ = nullptr;
  trace::MetricsRegistry* parent_metrics_ = nullptr;
  SimTimeSource time_source_;  // parent tracer's clock (shard 0)
  std::vector<std::unique_ptr<trace::Tracer>> shard_tracers_;
  std::vector<std::unique_ptr<trace::MetricsRegistry>> shard_registries_;
  std::vector<std::unique_ptr<SimTimeSource>> shard_time_sources_;
  std::vector<WorldMetrics> world_metrics_;  // indexed by current_shard()

  std::vector<std::shared_ptr<vclock::HardwareClock>> hw_clocks_;  // per time source
  std::vector<vclock::ModelBankPtr> model_banks_;                  // per shard
  std::vector<Mailbox> mailboxes_;
  std::vector<ShardState> shard_states_;            // per shard
  std::map<std::uint64_t, PendingHalf> rendezvous_;  // cross-node bursts (coordinator)
  std::vector<std::unique_ptr<RankCtx>> ctxs_;

  // Record / replay: when a replay::Recorder was installed on the
  // constructing thread, record_section_ is this World's section in it and
  // every rank-visible transport completion is appended there (per-rank
  // buffers, appended only from the owning shard's thread).  In replay mode
  // replay_feed_ serves the single surviving rank's recorded events.
  replay::RecordedWorld* record_section_ = nullptr;
  replay::ReplayFeed* replay_feed_ = nullptr;
  int replay_rank_ = -1;

  // Window-loop state shared between serial_phase and the worker loop.
  sim::Time window_end_ = 0.0;
  sim::Time last_window_end_ = 0.0;  // shard-count-invariant resume clamp
  std::vector<std::uint64_t> shard_caps_;  // per-shard lifetime event caps
  std::exception_ptr fatal_;
};

}  // namespace hcs::simmpi
