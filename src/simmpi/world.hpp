// World: the simulated machine plus the MPI-like process runtime.
//
// A World owns the discrete-event simulation, the network model, one shared
// HardwareClock per time source, and a mailbox per rank.  Rank programs are
// coroutines created by launch(); run() drives the event loop to completion
// and reports deadlocks (ranks still blocked with an empty event queue).
//
// The p2p_* and pingpong_burst members are the transport primitives used by
// Comm; user code goes through Comm and the collectives API.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "simmpi/failure.hpp"
#include "simmpi/message.hpp"
#include "simmpi/request.hpp"
#include "simmpi/network.hpp"
#include "topology/presets.hpp"
#include "trace/tracer.hpp"
#include "vclock/clock.hpp"
#include "vclock/hardware_clock.hpp"

namespace hcs::simmpi {

class World;
class Comm;

/// Per-rank execution context handed to rank programs.
class RankCtx {
 public:
  RankCtx(World& world, int rank);
  ~RankCtx();
  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  World& world() const noexcept { return *world_; }
  int rank() const noexcept { return rank_; }
  Comm& comm_world() noexcept { return *comm_world_; }
  vclock::ClockPtr base_clock() const;
  sim::Simulation& sim() const;

 private:
  World* world_;
  int rank_;
  std::unique_ptr<Comm> comm_world_;
};

class World {
 public:
  /// `fault_plan` (optional) activates deterministic fault injection for
  /// this World: a private fault::FaultInjector is seeded from (seed, plan
  /// seed), so identical (machine, seed, plan) triples reproduce bit-exactly
  /// regardless of how many trials run in parallel.  An empty plan leaves
  /// every code path identical to the fault-free model.
  World(topology::MachineConfig machine, std::uint64_t seed, fault::FaultPlan fault_plan = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::Simulation& sim() noexcept { return sim_; }
  const topology::ClusterTopology& topo() const noexcept { return machine_.topo; }
  const topology::MachineConfig& machine() const noexcept { return machine_; }
  NetworkModel& network() noexcept { return network_; }
  int size() const noexcept { return machine_.topo.total_ranks(); }

  /// Fault injector for this World; null when no fault plan was given.
  fault::FaultInjector* fault_injector() noexcept { return fault_.get(); }

  /// Failure detector for this World; null unless the fault plan contains a
  /// crash or crashlink fault (so crash-free runs take zero new branches).
  const FailureDetector* failure_detector() const noexcept { return detector_.get(); }

  /// Throws RankCrashed when the crash model has killed `rank` — every
  /// transport operation calls this on entry and after resuming.
  void check_crash(int rank) const {
    if (detector_ && sim_.now() >= detector_->crash_time(rank)) {
      throw RankCrashed{rank, sim_.now()};
    }
  }

  /// Shared hardware clock of the rank's time source.
  vclock::ClockPtr base_clock(int rank) const;

  using RankFn = std::function<sim::Task<void>(RankCtx&)>;

  /// Spawns one process per rank running `fn`.
  void launch(const RankFn& fn);

  /// Drains the event loop; throws on process exceptions, event-budget
  /// overrun, or deadlock (blocked processes with an empty queue).
  void run(std::uint64_t max_events = 4'000'000'000ULL);

  /// launch + run in one call.
  void run_all(const RankFn& fn, std::uint64_t max_events = 4'000'000'000ULL);

  RankCtx& ctx(int rank);

  // --- transport primitives (used by Comm; not intended for user code) ---

  sim::Task<void> p2p_send(int src, int dst, std::int64_t tag, std::vector<double> data,
                           std::int64_t bytes);
  sim::Task<Message> p2p_recv(int me, int src, std::int64_t tag);

  /// Nonblocking receive: posts the request (matching any already-arrived
  /// message) and returns immediately; complete with await_recv.
  RecvRequest p2p_irecv(int me, int src, std::int64_t tag);

  /// MPI_Wait analogue for a receive request.
  sim::Task<Message> await_recv(RecvRequest request);

  /// Bounded wait: completes the receive, or gives up at `deadline`
  /// (absolute sim time) and returns nullopt.  Throws RankCrashed if the
  /// receiving rank itself dies while blocked.  The fault-tolerant
  /// collectives build on this (Comm::recv_ft).
  sim::Task<std::optional<Message>> await_recv_until(RecvRequest request, sim::Time deadline);

  /// Nonblocking send: the message enters the network immediately; the
  /// request completes once the sender-side overhead has elapsed.
  SendRequest p2p_isend(int src, int dst, std::int64_t tag, std::vector<double> data,
                        std::int64_t bytes);

  /// MPI_Wait analogue for a send request.
  sim::Task<void> await_send(SendRequest request);

  /// Fast-path ping-pong burst between `me` and `partner` (DESIGN.md §4.3):
  /// both sides call this; per-exchange timestamps are synthesized from the
  /// same network distributions without per-message events.
  sim::Task<BurstResult> pingpong_burst(int me, int partner, bool i_am_client,
                                        vclock::Clock& my_clock, int nexchanges,
                                        std::int64_t bytes);

  /// Internal: delivery of an in-flight message (public for the messenger
  /// coroutine).
  void deliver_now(int dst, Message msg);

 private:
  struct Mailbox {
    std::deque<Message> unexpected;
    std::vector<RecvRequest> posted;  // irecvs (and blocking recvs) in post order
    // Channel-repair state, used only while network faults are active: next
    // expected sequence number per source rank (sized lazily) and messages
    // held back for in-order (FIFO) release.
    std::vector<std::uint64_t> expected_seq;
    std::map<std::pair<int, std::uint64_t>, Message> held;
  };
  struct BurstState;

  // Adapter handed to the active tracer so spans recorded anywhere in the
  // process are stamped with this World's simulated time.
  struct SimTimeSource final : trace::TimeSource {
    sim::Simulation* sim = nullptr;
    double trace_now() const override { return sim->now(); }
  };

  static std::uint64_t pair_key(int a, int b, int world_size);
  void synthesize_burst(BurstState& st);
  void match_or_enqueue(int dst, Message msg);
  void dispatch_message(int src, int dst, std::vector<double> data, std::int64_t bytes,
                        std::int64_t tag, sim::Time ready);

  /// Uniform crash-era delivery rule: a message sent src->dst exists only if
  /// it arrives while both endpoints are alive and the link is up.
  bool crash_delivered(int src, int dst, sim::Time arrive) const noexcept;
  void cancel_recv(const RecvRequest& request);
  sim::Task<void> block_on_recv(RecvRequest request, sim::Time deadline);
  sim::Task<void> recv_watchdog(RecvRequest request, sim::Time when, bool crash_kind);
  sim::Task<void> burst_watchdog(std::shared_ptr<BurstState> st, std::uint64_t key,
                                 sim::Time when);

  topology::MachineConfig machine_;
  sim::Simulation sim_;
  NetworkModel network_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<FailureDetector> detector_;  // only under crash/crashlink plans
  bool seq_tracking_ = false;          // assign/enforce channel sequence numbers
  std::vector<std::uint64_t> send_seq_;  // per (src, dst), when seq_tracking_
  SimTimeSource time_source_;
  trace::HistogramMetric* rtt_metric_ = nullptr;
  trace::Counter* pingpong_counter_ = nullptr;
  trace::HistogramMetric* burst_retry_metric_ = nullptr;
  trace::Counter* lost_exchange_metric_ = nullptr;
  trace::Counter* dup_absorbed_metric_ = nullptr;
  std::vector<std::shared_ptr<vclock::HardwareClock>> hw_clocks_;  // per time source
  std::vector<Mailbox> mailboxes_;
  std::map<std::uint64_t, std::shared_ptr<BurstState>> bursts_;
  std::vector<std::unique_ptr<RankCtx>> ctxs_;
};

}  // namespace hcs::simmpi
