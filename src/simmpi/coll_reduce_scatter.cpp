// Block reduce-scatter algorithms.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

// Ring: p-1 steps; after step s a rank holds the partial reduction of the
// chunk it will own — the reduce-scatter half of the ring allreduce.
sim::Task<std::vector<double>> reduce_scatter_ring(Comm& comm, std::vector<double> data,
                                                   std::size_t chunk, ReduceOp op,
                                                   std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + p) % p;
  const int right = (r + 1) % p;
  const std::int64_t chunk_wire = detail::wire_size(wire_bytes, chunk);

  auto block = [&](const std::vector<double>& buf, int idx) {
    return std::vector<double>(buf.begin() + static_cast<std::ptrdiff_t>(chunk) * idx,
                               buf.begin() + static_cast<std::ptrdiff_t>(chunk) * (idx + 1));
  };

  for (int step = 0; step < p - 1; ++step) {
    const int send_idx = (r - step + p) % p;
    const int recv_idx = (r - step - 1 + p) % p;
    const std::int64_t tag = comm.collective_tag(step);
    co_await comm.send(right, tag, block(data, send_idx), chunk_wire);
    std::optional<Message> msg = co_await comm.recv_ft(left, tag);
    if (msg && msg->data.size() == chunk) {
      for (std::size_t i = 0; i < chunk; ++i) {
        const std::size_t at = static_cast<std::size_t>(recv_idx) * chunk + i;
        data[at] = apply_op(op, data[at], msg->data[i]);
      }
    }
  }
  // After p-1 steps this rank's fully reduced chunk is (r + 1) % p... the
  // last recv_idx was (r - (p-2) - 1 + p) % p == (r + 1) % p.  MPI semantics
  // give rank r chunk r, so rotate with one final neighbour exchange.
  const int have = (r + 1) % p;
  if (have == r) co_return block(data, r);
  // The rank holding my chunk is my right neighbour (it "has" (right+1)%p ==
  // ... each rank q holds chunk (q+1)%p, so chunk r lives on rank (r-1+p)%p.
  const std::int64_t tag = comm.collective_tag(30000);
  co_await comm.send(right, tag, block(data, have), chunk_wire);
  co_return detail::data_or_nan(co_await comm.recv_ft(left, tag), chunk);
}

// Reduce to rank 0, then scatter — the small-message fallback.
sim::Task<std::vector<double>> reduce_scatter_reduce_then_scatter(Comm& comm,
                                                                  std::vector<double> data,
                                                                  std::size_t chunk, ReduceOp op,
                                                                  std::int64_t wire_bytes) {
  std::vector<double> reduced =
      co_await reduce(comm, std::move(data), op, 0, ReduceAlgo::kBinomial, wire_bytes);
  co_return co_await scatter(comm, std::move(reduced), chunk, 0, ScatterAlgo::kBinomial,
                             wire_bytes > 0 ? std::max<std::int64_t>(1, wire_bytes /
                                                                            comm.size())
                                            : 0);
}

}  // namespace

sim::Task<std::vector<double>> reduce_scatter(Comm& comm, std::vector<double> data,
                                              std::size_t chunk, ReduceOp op,
                                              ReduceScatterAlgo algo, std::int64_t wire_bytes) {
  if (data.size() != chunk * static_cast<std::size_t>(comm.size())) {
    throw std::invalid_argument("reduce_scatter: buffer must hold size() * chunk values");
  }
  comm.advance_collective();
  if (comm.size() == 1) co_return data;
  switch (algo) {
    case ReduceScatterAlgo::kRing:
      co_return co_await reduce_scatter_ring(comm, std::move(data), chunk, op, wire_bytes);
    case ReduceScatterAlgo::kReduceThenScatter:
      co_return co_await reduce_scatter_reduce_then_scatter(comm, std::move(data), chunk, op,
                                                            wire_bytes);
  }
  co_return data;
}

}  // namespace hcs::simmpi
