// Gather algorithms.  All ranks contribute equal-length vectors; the root
// ends with the concatenation in communicator-rank order.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> gather_linear(Comm& comm, std::vector<double> mine, int root,
                                             std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t unit = mine.size();
  if (r != root) {
    co_await comm.send(root, comm.collective_tag(0), std::move(mine),
                       detail::wire_size(wire_bytes, unit));
    co_return std::vector<double>{};
  }
  std::vector<double> out(unit * static_cast<std::size_t>(p));
  std::copy(mine.begin(), mine.end(), out.begin() + static_cast<std::ptrdiff_t>(unit) * root);
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    std::vector<double> got =
        detail::data_or_nan(co_await comm.recv_ft(src, comm.collective_tag(0)), unit);
    std::copy(got.begin(), got.end(), out.begin() + static_cast<std::ptrdiff_t>(unit) * src);
  }
  co_return out;
}

// Binomial fan-in: each subtree root forwards the contiguous block of
// relative ranks [relative, relative + held) it has accumulated.
sim::Task<std::vector<double>> gather_binomial(Comm& comm, std::vector<double> mine, int root,
                                               std::int64_t wire_bytes) {
  const int p = comm.size();
  const int relative = detail::rel(comm.rank(), root, p);
  const std::size_t unit = mine.size();

  // Buffer indexed by relative rank; `held` counts accumulated blocks.
  std::vector<double> buf(unit * static_cast<std::size_t>(p), 0.0);
  std::copy(mine.begin(), mine.end(), buf.begin() + static_cast<std::ptrdiff_t>(unit) * relative);
  int held = 1;

  for (int mask = 1; mask < p; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int child_rel = relative | mask;
      if (child_rel < p) {
        // The child's subtree size is fixed by the tree shape, so the block
        // count is known without looking at the payload — a dead child just
        // leaves its subtree's slots NaN.
        const int child_blocks = std::min(mask, p - child_rel);
        std::optional<Message> msg =
            co_await comm.recv_ft(detail::abs_rank(child_rel, root, p), comm.collective_tag(0));
        std::vector<double> got = detail::data_or_nan(
            std::move(msg), unit * static_cast<std::size_t>(child_blocks));
        std::copy(got.begin(), got.end(),
                  buf.begin() + static_cast<std::ptrdiff_t>(unit) * child_rel);
        held += unit == 0 ? 0 : child_blocks;
      }
    } else {
      const int parent_rel = relative & ~mask;
      std::vector<double> block(
          buf.begin() + static_cast<std::ptrdiff_t>(unit) * relative,
          buf.begin() + static_cast<std::ptrdiff_t>(unit) * (relative + held));
      co_await comm.send(detail::abs_rank(parent_rel, root, p), comm.collective_tag(0),
                         std::move(block),
                         detail::wire_size(wire_bytes, unit, static_cast<std::size_t>(held)));
      co_return std::vector<double>{};
    }
  }
  // Root: rotate from relative order back to absolute communicator order.
  std::vector<double> out(unit * static_cast<std::size_t>(p));
  for (int rr = 0; rr < p; ++rr) {
    const int absolute = detail::abs_rank(rr, root, p);
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(unit) * rr, unit,
                out.begin() + static_cast<std::ptrdiff_t>(unit) * absolute);
  }
  co_return out;
}

}  // namespace

sim::Task<std::vector<double>> gather(Comm& comm, std::vector<double> mine, int root,
                                      GatherAlgo algo, std::int64_t wire_bytes) {
  detail::check_root(comm, root);
  comm.advance_collective();
  if (comm.size() == 1) co_return mine;
  switch (algo) {
    case GatherAlgo::kLinear:
      co_return co_await gather_linear(comm, std::move(mine), root, wire_bytes);
    case GatherAlgo::kBinomial:
      co_return co_await gather_binomial(comm, std::move(mine), root, wire_bytes);
  }
  co_return mine;
}

}  // namespace hcs::simmpi
