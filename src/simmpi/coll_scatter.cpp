// Scatter algorithms.  The root provides size() blocks of `chunk` values
// (communicator-rank order); every rank returns its own block.  HCA2 uses
// this to distribute the merged clock models (paper Fig. 1a).
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> scatter_linear(Comm& comm, std::vector<double> all,
                                              std::size_t chunk, int root,
                                              std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  if (r != root) {
    co_return detail::data_or_nan(co_await comm.recv_ft(root, comm.collective_tag(0)), chunk);
  }
  for (int dst = 0; dst < p; ++dst) {
    if (dst == root) continue;
    std::vector<double> block(
        all.begin() + static_cast<std::ptrdiff_t>(chunk) * dst,
        all.begin() + static_cast<std::ptrdiff_t>(chunk) * (dst + 1));
    co_await comm.send(dst, comm.collective_tag(0), std::move(block),
                       detail::wire_size(wire_bytes, chunk));
  }
  co_return std::vector<double>(all.begin() + static_cast<std::ptrdiff_t>(chunk) * root,
                                all.begin() + static_cast<std::ptrdiff_t>(chunk) * (root + 1));
}

// Binomial fan-out: the inverse of the binomial gather.  Each node receives
// the contiguous block of relative ranks it is responsible for, keeps its
// own chunk and forwards sub-blocks down the tree.
sim::Task<std::vector<double>> scatter_binomial(Comm& comm, std::vector<double> all,
                                                std::size_t chunk, int root,
                                                std::int64_t wire_bytes) {
  const int p = comm.size();
  const int relative = detail::rel(comm.rank(), root, p);

  // seg holds blocks for relative ranks [relative, relative + held).
  std::vector<double> seg;
  int held = 0;
  int recv_mask = 0;  // the mask at which this rank received its segment

  if (relative == 0) {
    // Rotate the root's buffer into relative order.
    seg.resize(chunk * static_cast<std::size_t>(p));
    for (int rr = 0; rr < p; ++rr) {
      const int absolute = detail::abs_rank(rr, root, p);
      std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(chunk) * absolute, chunk,
                  seg.begin() + static_cast<std::ptrdiff_t>(chunk) * rr);
    }
    held = p;
    recv_mask = detail::pof2_floor(p) * 2;
  } else {
    int mask = 1;
    while (mask < p) {
      if ((relative & mask) != 0) {
        // This rank's subtree size is fixed by the tree shape; a dead parent
        // yields a NaN segment of the same shape, so forwarding below still
        // happens and no descendant is left waiting.
        const int my_blocks = std::min(mask, p - relative);
        std::optional<Message> msg =
            co_await comm.recv_ft(detail::abs_rank(relative - mask, root, p),
                                  comm.collective_tag(0));
        seg = detail::data_or_nan(std::move(msg),
                                  chunk * static_cast<std::size_t>(my_blocks));
        held = my_blocks;
        recv_mask = mask;
        break;
      }
      mask <<= 1;
    }
  }

  for (int mask = recv_mask >> 1; mask > 0; mask >>= 1) {
    const int child_rel = relative + mask;
    if (child_rel < p && child_rel < relative + held) {
      const int child_blocks = std::min(held - mask, mask);
      std::vector<double> block(
          seg.begin() + static_cast<std::ptrdiff_t>(chunk) * mask,
          seg.begin() + static_cast<std::ptrdiff_t>(chunk) * (mask + child_blocks));
      co_await comm.send(detail::abs_rank(child_rel, root, p), comm.collective_tag(0),
                         std::move(block),
                         detail::wire_size(wire_bytes, chunk,
                                           static_cast<std::size_t>(child_blocks)));
      held = mask;
    }
  }
  seg.resize(chunk);
  co_return seg;
}

}  // namespace

sim::Task<std::vector<double>> scatter(Comm& comm, std::vector<double> all, std::size_t chunk,
                                       int root, ScatterAlgo algo, std::int64_t wire_bytes) {
  detail::check_root(comm, root);
  if (comm.rank() == root && all.size() != chunk * static_cast<std::size_t>(comm.size())) {
    throw std::invalid_argument("scatter: root buffer must hold size() * chunk values");
  }
  comm.advance_collective();
  if (comm.size() == 1) co_return all;
  switch (algo) {
    case ScatterAlgo::kLinear:
      co_return co_await scatter_linear(comm, std::move(all), chunk, root, wire_bytes);
    case ScatterAlgo::kBinomial:
      co_return co_await scatter_binomial(comm, std::move(all), chunk, root, wire_bytes);
  }
  co_return all;
}

}  // namespace hcs::simmpi
