// Crash-stop failure model: detection and the per-peer status view.
//
// A `crash:rank=<r>,at=<t>` fault kills rank r at simulated time t: the rank
// stops scheduling at its next transport operation (RankCrashed unwinds its
// program), and every message of the crash era is dropped by one uniform
// rule — a message exists only if it *arrives* while its source and
// destination are alive and the link between them is up.  `crashlink`
// severs one link the same way without killing either endpoint.
//
// Detection is modelled, not simulated message-by-message: flooding the
// schedule with heartbeat probes would perturb the very timing the
// simulator exists to measure.  Instead the FailureDetector plays the role
// of a per-rank heartbeat daemon with exponential backoff: after a peer's
// failure event E, the observer misses probes at E + P, E + 3P, E + 7P, ...
// (period P doubling after each miss) and declares the peer dead after
// kProbeMisses consecutive misses, i.e. at E + P * (2^kProbeMisses - 1).
// P derives from the machine's small-message inter-node round-trip, so the
// latency scales with the network like a real detector's would.  Because
// both the failure plan and the network model are per-World deterministic,
// every rank's status() view is a pure function of (observer, peer, now) —
// which is what lets collectives bound their receives without agreement
// rounds, and keeps crash runs byte-identical for any --jobs value.
#pragma once

#include "fault/fault_injector.hpp"
#include "sim/time.hpp"

namespace hcs::simmpi {

class NetworkModel;

/// Observer-side view of a peer.  kSuspected covers the window between the
/// first missed heartbeat and the declaration; algorithms that must not
/// abandon a slow peer treat only kDead as actionable.  kRecovered means a
/// previously-departed peer answered a heartbeat again (its rejoin became
/// visible one probe period after the restart — symmetric to suspicion);
/// it stays kRecovered until the next failure window, so membership layers
/// can distinguish "never left" from "needs re-admission".
enum class PeerStatus { kAlive, kSuspected, kDead, kRecovered };

const char* to_string(PeerStatus status);

/// Thrown inside a rank program when the crash-stop model kills the calling
/// rank: every transport operation checks on entry (and after resuming), so
/// a crashed rank unwinds cleanly at its next interaction with the world.
/// World::launch catches it per rank; it never escapes World::run.
struct RankCrashed {
  int rank = -1;
  sim::Time at = 0.0;
};

/// Ultimate liveness net for bounded receives under a crash plan: even a
/// pathological membership race between two *live* ranks (e.g. a crash
/// landing in the middle of a communicator split's member exchange)
/// terminates as a degraded receive instead of deadlocking the world.
/// Far beyond any legitimate wait in the implemented workloads (the longest
/// horizon, Fig. 2 drift, is 500 simulated seconds).
inline constexpr sim::Time kLivenessTimeout = 600.0;

class FailureDetector {
 public:
  /// Consecutive missed probes before a peer is declared dead.
  static constexpr int kProbeMisses = 3;

  FailureDetector(const fault::FaultInjector& injector, const NetworkModel& net, int nranks);

  int nranks() const noexcept { return nranks_; }

  /// Crash-stop time of `rank` (sim::kTimeInfinity if it never crashes).
  sim::Time crash_time(int rank) const noexcept { return injector_->crash_time(rank); }

  /// The failure event `observer` can perceive about `peer`: the peer's
  /// crash, or the cut of the observer<->peer link, whichever is earlier.
  sim::Time event_time(int observer, int peer) const noexcept {
    return std::min(injector_->crash_time(peer), injector_->link_down_time(observer, peer));
  }

  /// First missed heartbeat (observer starts suspecting the peer).
  sim::Time suspect_time(int observer, int peer) const noexcept {
    return event_time(observer, peer) + probe_period_;
  }

  /// When `observer` declares `peer` dead: event + P * (2^kProbeMisses - 1).
  /// This is the *first* declaration; under churn plans use
  /// detect_time_after, which walks every down window.
  sim::Time detect_time(int observer, int peer) const noexcept {
    return event_time(observer, peer) + detection_latency_;
  }

  /// Begin of the dead-declaration window containing `now`, or of the next
  /// one after it (sim::kTimeInfinity when `observer` will never declare
  /// `peer` dead again).  For a single-failure plan this equals
  /// detect_time(observer, peer) at every instant, so crash-only call
  /// sites keep their exact deadlines when migrated.
  sim::Time detect_time_after(int observer, int peer, sim::Time now) const noexcept;

  /// Pure per-peer status at `now`: walks the peer's down intervals so a
  /// restart transitions dead -> recovered one probe period after the
  /// rejoin, and a later departure re-enters suspected/dead.
  PeerStatus status(int observer, int peer, sim::Time now) const noexcept;

  /// Earliest failure event anywhere in the plan: the first crash or link
  /// cut that will ever fire (kTimeInfinity if none does).
  sim::Time first_event_time() const noexcept { return first_event_; }

  /// True once some crash or link cut has fired.  Before this instant no
  /// observer can perceive a failure, so cooperative recovery phases (which
  /// exchange real messages) can be skipped without perturbing the
  /// fault-free network schedule — an armed-but-unfired crash plan stays
  /// bit-identical to no plan.
  bool any_event_fired(sim::Time now) const noexcept { return now >= first_event_; }

  /// Base heartbeat period P (doubles after each miss).
  double probe_period() const noexcept { return probe_period_; }

  /// Total modelled detection latency P * (2^kProbeMisses - 1).
  double detection_latency() const noexcept { return detection_latency_; }

 private:
  const fault::FaultInjector* injector_;
  int nranks_;
  double probe_period_;
  double detection_latency_;
  sim::Time first_event_ = 0.0;
};

}  // namespace hcs::simmpi
