// Allgather algorithms.  All ranks contribute equal-length vectors and end
// with the concatenation in communicator-rank order.  Comm::split builds on
// this, so communicator creation inherits a realistic collective cost.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

// Bruck: log2(p) rounds on rotated block order, then a local rotation.
sim::Task<std::vector<double>> allgather_bruck(Comm& comm, std::vector<double> mine,
                                               std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t unit = mine.size();

  // blocks[i] is the block of rank (r + i) % p.
  std::vector<double> blocks = std::move(mine);
  int have = 1;
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    const int to = (r - dist + p) % p;
    const int from = (r + dist) % p;
    const int send_count = std::min(have, p - have);
    std::vector<double> out(blocks.begin(),
                            blocks.begin() + static_cast<std::ptrdiff_t>(unit) * send_count);
    const std::int64_t tag = comm.collective_tag(round);
    co_await comm.send(to, tag, std::move(out),
                       detail::wire_size(wire_bytes, unit, static_cast<std::size_t>(send_count)));
    // `have` evolves identically on every rank (1, 2, 4, ... clamped at p),
    // so the expected incoming block count equals our own send_count even
    // when the sender died and the payload is NaN-substituted.
    std::optional<Message> msg = co_await comm.recv_ft(from, tag);
    std::vector<double> got =
        detail::data_or_nan(std::move(msg), unit * static_cast<std::size_t>(send_count));
    blocks.insert(blocks.end(), got.begin(), got.end());
    have += send_count;
  }
  // Un-rotate: result block j belongs to rank j == (r + i) % p.
  std::vector<double> out(unit * static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    const int owner = (r + i) % p;
    std::copy_n(blocks.begin() + static_cast<std::ptrdiff_t>(unit) * i, unit,
                out.begin() + static_cast<std::ptrdiff_t>(unit) * owner);
  }
  co_return out;
}

// Ring: p-1 steps, each forwarding the block received in the previous step.
sim::Task<std::vector<double>> allgather_ring(Comm& comm, std::vector<double> mine,
                                              std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + p) % p;
  const int right = (r + 1) % p;
  const std::size_t unit = mine.size();

  std::vector<double> out(unit * static_cast<std::size_t>(p));
  std::copy(mine.begin(), mine.end(), out.begin() + static_cast<std::ptrdiff_t>(unit) * r);
  for (int step = 0; step < p - 1; ++step) {
    const int send_owner = (r - step + p) % p;
    const int recv_owner = (r - step - 1 + p) % p;
    std::vector<double> block(
        out.begin() + static_cast<std::ptrdiff_t>(unit) * send_owner,
        out.begin() + static_cast<std::ptrdiff_t>(unit) * (send_owner + 1));
    const std::int64_t tag = comm.collective_tag(step);
    co_await comm.send(right, tag, std::move(block), detail::wire_size(wire_bytes, unit));
    std::vector<double> got = detail::data_or_nan(co_await comm.recv_ft(left, tag), unit);
    std::copy(got.begin(), got.end(),
              out.begin() + static_cast<std::ptrdiff_t>(unit) * recv_owner);
  }
  co_return out;
}

}  // namespace

sim::Task<std::vector<double>> allgather(Comm& comm, std::vector<double> mine,
                                         AllgatherAlgo algo, std::int64_t wire_bytes) {
  comm.advance_collective();
  if (comm.size() == 1) co_return mine;
  switch (algo) {
    case AllgatherAlgo::kBruck:
      co_return co_await allgather_bruck(comm, std::move(mine), wire_bytes);
    case AllgatherAlgo::kRing:
      co_return co_await allgather_ring(comm, std::move(mine), wire_bytes);
  }
  co_return mine;
}

}  // namespace hcs::simmpi
