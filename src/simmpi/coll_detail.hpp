// Shared helpers for the collective algorithm implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "simmpi/collectives.hpp"
#include "simmpi/message.hpp"
#include "trace/span.hpp"

namespace hcs::simmpi::detail {

/// Largest power of two <= p (p >= 1).
inline int pof2_floor(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

/// Wire bytes for a message carrying `blocks` blocks whose unit payload is
/// `unit_values` doubles, honouring a caller override of the per-block size.
inline std::int64_t wire_size(std::int64_t wire_bytes_override, std::size_t unit_values,
                              std::size_t blocks = 1) {
  const std::int64_t unit = wire_bytes_override > 0
                                ? wire_bytes_override
                                : static_cast<std::int64_t>(unit_values * sizeof(double));
  return std::max<std::int64_t>(1, unit * static_cast<std::int64_t>(blocks));
}

inline void check_root(const Comm& comm, int root) {
  if (root < 0 || root >= comm.size()) {
    throw std::invalid_argument("collective: root " + std::to_string(root) + " out of range");
  }
}

/// Rank arithmetic relative to a root (MPI's "relative rank" trick).
inline int rel(int rank, int root, int p) { return (rank - root + p) % p; }
inline int abs_rank(int relative, int root, int p) { return (relative + root) % p; }

/// Crash-model data substitution for quorum collectives: the payload when the
/// peer's block arrived intact, otherwise `expect` quiet-NaNs.  Survivors keep
/// deterministic buffer shapes regardless of who died; a dead rank's slots
/// read as NaN downstream, which the sync layer turns into per-rank health.
inline std::vector<double> data_or_nan(std::optional<Message>&& msg, std::size_t expect) {
  if (msg && msg->data.size() == expect) return std::move(msg->data);
  return std::vector<double>(expect, std::numeric_limits<double>::quiet_NaN());
}

}  // namespace hcs::simmpi::detail
