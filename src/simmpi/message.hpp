// Message representation for the simulated MPI layer.
//
// Payloads carry doubles (every value the clock-sync stack exchanges is a
// timestamp or a model coefficient) plus a declared wire size in bytes so
// benchmark payloads of arbitrary size need not materialize contents.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hcs::simmpi {

struct Message {
  int src = -1;              // world rank of the sender
  std::int64_t tag = 0;
  std::vector<double> data;
  std::int64_t bytes = 0;    // wire size used by the cost model
  sim::Time sent_at = 0.0;
  sim::Time arrived_at = 0.0;
  // Per-(src, dst) channel sequence number, assigned only while a fault
  // injector with network faults is active: duplicates and reorderings are
  // detected and repaired at the receiving mailbox (World::deliver_now).
  std::uint64_t seq = 0;
  // Membership view the message was sent under (fault plan epoch at
  // `sent_at`), stamped only while a churn plan is active.  Stale-view
  // messages — those whose endpoints changed incarnation in flight — are
  // rejected deterministically by World::crash_delivered.
  std::uint64_t view = 0;
};

/// One ping-pong exchange as observed by the client process: its own send
/// and receive timestamps plus the reference's reply timestamp (which
/// travelled inside the reply message).  Values are clock readings of the
/// clocks the two sides passed to the burst, not true times.
struct PingSample {
  double client_send = 0.0;  // s_slast in the paper's Algorithm 7
  double ref_reply = 0.0;    // t_last
  double client_recv = 0.0;  // s_now
};

/// Result of one ping-pong burst.  Fault-free, samples.size() == requested;
/// under an active fault plan individual exchanges can be abandoned after
/// the retry budget (lost > 0), which the sync layer reports as degraded.
struct BurstResult {
  std::vector<PingSample> samples;
  int requested = 0;  // exchanges asked for
  int lost = 0;       // exchanges abandoned after the per-exchange retry budget
  int retries = 0;    // timed-out attempts that were retried
};

}  // namespace hcs::simmpi
