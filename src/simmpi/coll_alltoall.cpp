// Alltoall (pairwise exchange).
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

sim::Task<std::vector<double>> alltoall_pairwise(Comm& comm, std::vector<double> sendbuf,
                                                 std::size_t chunk, std::int64_t wire_bytes) {
  const int p = comm.size();
  const int r = comm.rank();
  std::vector<double> out(chunk * static_cast<std::size_t>(p));
  // Own block first.
  std::copy_n(sendbuf.begin() + static_cast<std::ptrdiff_t>(chunk) * r, chunk,
              out.begin() + static_cast<std::ptrdiff_t>(chunk) * r);
  for (int step = 1; step < p; ++step) {
    const int to = (r + step) % p;
    const int from = (r - step + p) % p;
    std::vector<double> block(
        sendbuf.begin() + static_cast<std::ptrdiff_t>(chunk) * to,
        sendbuf.begin() + static_cast<std::ptrdiff_t>(chunk) * (to + 1));
    const std::int64_t tag = comm.collective_tag(step);
    co_await comm.send(to, tag, std::move(block), detail::wire_size(wire_bytes, chunk));
    std::vector<double> got = detail::data_or_nan(co_await comm.recv_ft(from, tag), chunk);
    std::copy(got.begin(), got.end(),
              out.begin() + static_cast<std::ptrdiff_t>(chunk) * from);
  }
  co_return out;
}

}  // namespace

sim::Task<std::vector<double>> alltoall(Comm& comm, std::vector<double> sendbuf, std::size_t chunk,
                                        AlltoallAlgo algo, std::int64_t wire_bytes) {
  if (sendbuf.size() != chunk * static_cast<std::size_t>(comm.size())) {
    throw std::invalid_argument("alltoall: buffer must hold size() * chunk values");
  }
  comm.advance_collective();
  if (comm.size() == 1) co_return sendbuf;
  switch (algo) {
    case AlltoallAlgo::kPairwise:
      co_return co_await alltoall_pairwise(comm, std::move(sendbuf), chunk, wire_bytes);
  }
  co_return sendbuf;
}

}  // namespace hcs::simmpi
