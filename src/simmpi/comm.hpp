// Communicator: an ordered group of world ranks with a private tag context.
//
// Comm mirrors the MPI_Comm surface the paper's algorithms need: rank/size,
// tagged point-to-point, split (including MPI_COMM_TYPE_SHARED-style node and
// socket splits), and a per-communicator collective sequence number that
// keeps concurrent collectives on different communicators from cross-talking.
// Comm objects are cheap per-rank values; members are shared immutably.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/task.hpp"
#include "simmpi/failure.hpp"
#include "simmpi/message.hpp"
#include "simmpi/world.hpp"

namespace hcs::simmpi {

class Comm {
 public:
  /// Color value excluding the caller from the new communicator.
  static constexpr int kUndefined = -1;

  /// Invalid communicator (MPI_COMM_NULL analogue).
  Comm() = default;

  Comm(World* world, std::shared_ptr<const std::vector<int>> members, int my_index,
       std::uint64_t context);

  static Comm world_comm(World& world, int rank);

  /// Message-free view communicator: the ranks that are up at time `at`
  /// under the World's fault plan, in world-rank order, with a tag context
  /// derived from the membership epoch at `at`.  Because membership is a
  /// pure function of the (deterministic) plan, every live rank evaluating
  /// the same `at` constructs an identical communicator without exchanging
  /// a message — the churn layer's replacement for a full comm split when a
  /// rank departs or returns.  The caller must be up at `at`.
  static Comm view_comm(World& world, int rank, sim::Time at);

  bool valid() const noexcept { return world_ != nullptr; }
  int rank() const noexcept { return my_index_; }
  int size() const noexcept { return members_ ? static_cast<int>(members_->size()) : 0; }
  int world_rank(int comm_rank) const { return (*members_)[static_cast<std::size_t>(comm_rank)]; }
  int my_world_rank() const { return world_rank(my_index_); }
  World& world() const noexcept { return *world_; }
  /// The simulation advancing this rank's shard — rank code must read time
  /// through here (or RankCtx::sim()), never through world().sim().
  sim::Simulation& sim() const noexcept { return world_->sim_of(my_world_rank()); }

  /// Point-to-point by communicator rank.  `bytes` defaults to the payload
  /// size (minimum 8 B on the wire).
  sim::Task<void> send(int dst, int tag, std::vector<double> data = {}, std::int64_t bytes = 0);
  sim::Task<Message> recv(int src, int tag);

  /// Fault-tolerant receive: the message, or nullopt once this rank's
  /// failure detector declares `src` dead (never nullopt for a live,
  /// reachable peer).  Identical to recv() when no crash fault is active.
  /// Quorum collectives and the self-healing sync layer build on this.
  sim::Task<std::optional<Message>> recv_ft(int src, int tag);

  /// This rank's current view of a communicator peer; kAlive when no crash
  /// fault is active (see simmpi::FailureDetector).
  PeerStatus peer_status(int comm_rank) const;

  /// Nonblocking variants (MPI_Isend / MPI_Irecv / MPI_Wait analogues).
  /// irecv posts immediately; wait() on the returned request completes the
  /// transfer.  isend hands the message to the network immediately; waiting
  /// on it models buffer-reuse completion.
  RecvRequest irecv(int src, int tag);
  sim::Task<Message> wait(RecvRequest request);
  SendRequest isend(int dst, int tag, std::vector<double> data = {}, std::int64_t bytes = 0);
  sim::Task<void> wait(SendRequest request);

  /// Pairwise ping-pong burst (see World::pingpong_burst); `partner` is a
  /// communicator rank.
  sim::Task<BurstResult> pingpong_burst(int partner, bool i_am_client, vclock::Clock& clock,
                                        int nexchanges, std::int64_t bytes = 16);

  /// Splits by color/key.  Collective over all members (internally performs
  /// an allgather, so communicator creation has a realistic cost — the paper
  /// deliberately includes it in the hierarchical sync duration).
  sim::Task<Comm> split(int color, int key);

  /// MPI_COMM_TYPE_SHARED analogue: one communicator per node.
  sim::Task<Comm> split_shared_node();

  /// One communicator per socket.
  sim::Task<Comm> split_shared_socket();

  /// Membership epoch this communicator was built under (0 for the world
  /// communicator and every fault-free or pre-transition view).  Receives
  /// and collectives on a view communicator are thereby stamped with the
  /// view: the tag context folds the epoch in, so a message sent under a
  /// stale view can never match a receive posted under the current one.
  std::uint64_t view_epoch() const noexcept { return view_epoch_; }

  /// Tag for one phase of the current collective; advance_collective() must
  /// be called exactly once per collective invocation (the collectives API
  /// does this).
  std::int64_t collective_tag(int phase) const;
  void advance_collective() noexcept { ++coll_seq_; }

 private:
  std::int64_t user_tag(int tag) const;
  sim::Task<std::vector<double>> split_exchange_ft(std::vector<double> mine);

  World* world_ = nullptr;
  std::shared_ptr<const std::vector<int>> members_;
  int my_index_ = -1;
  std::uint64_t context_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::uint64_t split_seq_ = 0;
  std::uint64_t view_epoch_ = 0;
};

}  // namespace hcs::simmpi
