#include "simmpi/network.hpp"

#include <algorithm>

namespace hcs::simmpi {

NetworkModel::NetworkModel(const topology::ClusterTopology& topo,
                           const topology::NetworkParams& params, std::uint64_t seed)
    : topo_(&topo),
      params_(params),
      rng_(seed),
      egress_free_(static_cast<std::size_t>(topo.nodes()), 0.0),
      ingress_free_(static_cast<std::size_t>(topo.nodes()), 0.0) {
  if (trace::MetricsRegistry* m = trace::active_metrics()) {
    static constexpr const char* kLevelNames[3] = {"intra_socket", "intra_node", "inter_node"};
    for (int level = 0; level < 3; ++level) {
      const std::string suffix = kLevelNames[level];
      metrics_[level].messages = &m->counter("net.messages." + suffix);
      metrics_[level].bytes = &m->counter("net.bytes." + suffix);
      metrics_[level].delay = &m->histogram("net.delay." + suffix);
    }
    retransmit_metric_ = &m->counter("fault.net.retransmits");
  }
}

void NetworkModel::count_delivery(LinkLevel level, std::int64_t bytes, sim::Time delay) {
  LevelMetrics& m = metrics_[static_cast<int>(level)];
  if (!m.messages) return;
  m.messages->inc();
  m.bytes->inc(static_cast<std::uint64_t>(bytes));
  m.delay->observe(delay);
}

LinkLevel NetworkModel::classify(int src_rank, int dst_rank) const {
  const auto a = topo_->locate(src_rank);
  const auto b = topo_->locate(dst_rank);
  if (a.node != b.node) return LinkLevel::kInterNode;
  if (a.socket != b.socket) return LinkLevel::kIntraNode;
  return LinkLevel::kIntraSocket;
}

const topology::LinkParams& NetworkModel::link(LinkLevel level) const {
  switch (level) {
    case LinkLevel::kIntraSocket: return params_.intra_socket;
    case LinkLevel::kIntraNode: return params_.intra_node;
    case LinkLevel::kInterNode: return params_.inter_node;
  }
  return params_.inter_node;
}

sim::Time NetworkModel::sample_delay(LinkLevel level, std::int64_t bytes) {
  const topology::LinkParams& lp = link(level);
  sim::Time d = lp.base_latency + lp.per_byte * static_cast<double>(bytes);
  d += rng_.exponential(lp.jitter_mean);
  if (lp.spike_prob > 0 && rng_.bernoulli(lp.spike_prob)) {
    d += rng_.exponential(lp.spike_mean);
  }
  return d;
}

double NetworkModel::expected_delay(LinkLevel level, std::int64_t bytes) const {
  const topology::LinkParams& lp = link(level);
  return lp.base_latency + lp.per_byte * static_cast<double>(bytes) + lp.jitter_mean +
         lp.spike_prob * lp.spike_mean;
}

double NetworkModel::retransmit_timeout(LinkLevel level, std::int64_t bytes) const {
  return 6.0 * expected_delay(level, bytes) + 2.0 * (params_.send_overhead + params_.recv_overhead);
}

sim::Time NetworkModel::deliver_attempt(LinkLevel level, int src_rank, int dst_rank,
                                        std::int64_t bytes, sim::Time depart_ready,
                                        const fault::NetFaultDecision* decision) {
  const double factor = decision ? decision->delay_factor : 1.0;
  const double extra = decision ? decision->extra_delay : 0.0;
  const bool dropped = decision && decision->drop;
  if (level != LinkLevel::kInterNode) {
    const sim::Time d = sample_delay(level, bytes) * factor + extra;
    if (!dropped) count_delivery(level, bytes, d);
    return depart_ready + d;
  }
  const auto src_node = static_cast<std::size_t>(topo_->locate(src_rank).node);
  const auto dst_node = static_cast<std::size_t>(topo_->locate(dst_rank).node);
  const double nic_busy = params_.nic_gap + params_.nic_per_byte * static_cast<double>(bytes);
  const sim::Time depart = std::max(depart_ready, egress_free_[src_node]);
  egress_free_[src_node] = depart + nic_busy;
  sim::Time arrive = depart + sample_delay(level, bytes) * factor + extra;
  // A message lost in the fabric consumed egress bandwidth but never reaches
  // the destination NIC.
  if (dropped) return arrive;
  arrive = std::max(arrive, ingress_free_[dst_node]);
  ingress_free_[dst_node] = arrive + nic_busy;
  // The observed delay includes NIC queueing: hand-off to arrival.
  count_delivery(level, bytes, arrive - depart_ready);
  return arrive;
}

sim::Time NetworkModel::deliver_time(int src_rank, int dst_rank, std::int64_t bytes,
                                     sim::Time depart_ready, DeliveryFaults* faults) {
  const LinkLevel level = classify(src_rank, dst_rank);
  if (!faults || !injector_ || !injector_->net_active()) {
    return deliver_attempt(level, src_rank, dst_rank, bytes, depart_ready, nullptr);
  }
  const double rto = retransmit_timeout(level, bytes);
  sim::Time ready = depart_ready;
  for (int attempt = 0;; ++attempt) {
    fault::NetFaultDecision fd =
        injector_->on_message(src_rank, dst_rank, static_cast<int>(level), ready);
    // The last permitted attempt always goes through: the reliable transport
    // may degrade timing arbitrarily but never loses a message outright.
    if (attempt >= kMaxRetransmits) fd.drop = false;
    const sim::Time arrive = deliver_attempt(level, src_rank, dst_rank, bytes, ready, &fd);
    if (!fd.drop) {
      faults->retransmits = attempt;
      faults->duplicate = fd.duplicate;
      if (attempt > 0 && retransmit_metric_) {
        retransmit_metric_->inc(static_cast<std::uint64_t>(attempt));
      }
      return arrive;
    }
    ready += rto;
  }
}

sim::Time NetworkModel::deliver_time_uncontended(int src_rank, int dst_rank, std::int64_t bytes,
                                                 sim::Time depart_ready,
                                                 fault::NetFaultDecision* decision) {
  const LinkLevel level = classify(src_rank, dst_rank);
  if (decision && injector_ && injector_->net_active()) {
    *decision = injector_->on_message(src_rank, dst_rank, static_cast<int>(level), depart_ready);
    const sim::Time d = sample_delay(level, bytes) * decision->delay_factor + decision->extra_delay;
    if (!decision->drop) count_delivery(level, bytes, d);
    return depart_ready + d;
  }
  const sim::Time d = sample_delay(level, bytes);
  count_delivery(level, bytes, d);
  return depart_ready + d;
}

}  // namespace hcs::simmpi
