#include "simmpi/network.hpp"

#include <algorithm>
#include <cassert>

#include "sim/shard_context.hpp"

namespace hcs::simmpi {

NetworkModel::NetworkModel(const topology::ClusterTopology& topo,
                           const topology::NetworkParams& params, std::uint64_t seed)
    : topo_(&topo),
      params_(params),
      rng_(seed),
      channel_seed_(seed ^ 0x6a09e667f3bcc909ULL),
      channel_rngs_(static_cast<std::size_t>(topo.total_ranks())),
      egress_free_(static_cast<std::size_t>(topo.nodes()), 0.0),
      ingress_free_(static_cast<std::size_t>(topo.nodes()), 0.0) {
  shard_metrics_.push_back(resolve_metrics(trace::active_metrics()));
}

NetworkModel::ShardMetrics NetworkModel::resolve_metrics(trace::MetricsRegistry* registry) {
  ShardMetrics out;
  if (!registry) return out;
  static constexpr const char* kLevelNames[3] = {"intra_socket", "intra_node", "inter_node"};
  for (int level = 0; level < 3; ++level) {
    const std::string suffix = kLevelNames[level];
    out.levels[level].messages = &registry->counter("net.messages." + suffix);
    out.levels[level].bytes = &registry->counter("net.bytes." + suffix);
    out.levels[level].delay = &registry->histogram("net.delay." + suffix);
  }
  out.retransmits = &registry->counter("fault.net.retransmits");
  return out;
}

void NetworkModel::bind_shards(const std::vector<trace::MetricsRegistry*>& registries) {
  shard_metrics_.clear();
  for (trace::MetricsRegistry* registry : registries) {
    shard_metrics_.push_back(resolve_metrics(registry));
  }
  if (shard_metrics_.empty()) shard_metrics_.push_back(resolve_metrics(nullptr));
}

void NetworkModel::count_delivery(LinkLevel level, std::int64_t bytes, sim::Time delay) {
  assert(static_cast<std::size_t>(sim::current_shard()) < shard_metrics_.size());
  LevelMetrics& m =
      shard_metrics_[static_cast<std::size_t>(sim::current_shard())].levels[static_cast<int>(level)];
  if (!m.messages) return;
  m.messages->inc();
  m.bytes->inc(static_cast<std::uint64_t>(bytes));
  m.delay->observe(delay);
}

LinkLevel NetworkModel::classify(int src_rank, int dst_rank) const {
  const auto a = topo_->locate(src_rank);
  const auto b = topo_->locate(dst_rank);
  if (a.node != b.node) return LinkLevel::kInterNode;
  if (a.socket != b.socket) return LinkLevel::kIntraNode;
  return LinkLevel::kIntraSocket;
}

const topology::LinkParams& NetworkModel::link(LinkLevel level) const {
  switch (level) {
    case LinkLevel::kIntraSocket: return params_.intra_socket;
    case LinkLevel::kIntraNode: return params_.intra_node;
    case LinkLevel::kInterNode: return params_.inter_node;
  }
  return params_.inter_node;
}

sim::Time NetworkModel::sample_delay(LinkLevel level, std::int64_t bytes) {
  return sample_delay(level, bytes, rng_);
}

sim::Time NetworkModel::sample_delay(LinkLevel level, std::int64_t bytes, sim::Rng& rng) {
  const topology::LinkParams& lp = link(level);
  sim::Time d = lp.base_latency + lp.per_byte * static_cast<double>(bytes);
  d += rng.exponential(lp.jitter_mean);
  if (lp.spike_prob > 0 && rng.bernoulli(lp.spike_prob)) {
    d += rng.exponential(lp.spike_mean);
  }
  return d;
}

sim::Rng& NetworkModel::channel_rng(int src_rank, int dst_rank) {
  auto& per_src = channel_rngs_[static_cast<std::size_t>(src_rank)];
  auto it = per_src.find(dst_rank);
  if (it == per_src.end()) {
    std::uint64_t state = channel_seed_ ^
                          (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src_rank) + 1)) ^
                          (0xd1b54a32d192ed03ULL * (static_cast<std::uint64_t>(dst_rank) + 1));
    const std::uint64_t derived = sim::splitmix64(state);
    it = per_src.emplace(dst_rank, sim::Rng(derived)).first;
  }
  return it->second;
}

double NetworkModel::expected_delay(LinkLevel level, std::int64_t bytes) const {
  const topology::LinkParams& lp = link(level);
  return lp.base_latency + lp.per_byte * static_cast<double>(bytes) + lp.jitter_mean +
         lp.spike_prob * lp.spike_mean;
}

double NetworkModel::retransmit_timeout(LinkLevel level, std::int64_t bytes) const {
  return 6.0 * expected_delay(level, bytes) + 2.0 * (params_.send_overhead + params_.recv_overhead);
}

sim::Time NetworkModel::deliver_attempt(LinkLevel level, int src_rank, int dst_rank,
                                        std::int64_t bytes, sim::Time depart_ready,
                                        const fault::NetFaultDecision* decision) {
  const double factor = decision ? decision->delay_factor : 1.0;
  const double extra = decision ? decision->extra_delay : 0.0;
  const bool dropped = decision && decision->drop;
  sim::Rng& rng = channel_rng(src_rank, dst_rank);
  if (level != LinkLevel::kInterNode) {
    const sim::Time d = sample_delay(level, bytes, rng) * factor + extra;
    if (!dropped) count_delivery(level, bytes, d);
    return depart_ready + d;
  }
  const auto src_node = static_cast<std::size_t>(topo_->locate(src_rank).node);
  const auto dst_node = static_cast<std::size_t>(topo_->locate(dst_rank).node);
  const double nic_busy = params_.nic_gap + params_.nic_per_byte * static_cast<double>(bytes);
  const sim::Time depart = std::max(depart_ready, egress_free_[src_node]);
  egress_free_[src_node] = depart + nic_busy;
  sim::Time arrive = depart + sample_delay(level, bytes, rng) * factor + extra;
  // A message lost in the fabric consumed egress bandwidth but never reaches
  // the destination NIC.
  if (dropped) return arrive;
  arrive = std::max(arrive, ingress_free_[dst_node]);
  ingress_free_[dst_node] = arrive + nic_busy;
  // The observed delay includes NIC queueing: hand-off to arrival.
  count_delivery(level, bytes, arrive - depart_ready);
  return arrive;
}

sim::Time NetworkModel::egress_to_wire(int src_rank, int dst_rank, std::int64_t bytes,
                                       sim::Time depart_ready,
                                       const fault::NetFaultDecision* decision) {
  const double factor = decision ? decision->delay_factor : 1.0;
  const double extra = decision ? decision->extra_delay : 0.0;
  const auto src_node = static_cast<std::size_t>(topo_->locate(src_rank).node);
  const double nic_busy = params_.nic_gap + params_.nic_per_byte * static_cast<double>(bytes);
  const sim::Time depart = std::max(depart_ready, egress_free_[src_node]);
  egress_free_[src_node] = depart + nic_busy;
  sim::Rng& rng = channel_rng(src_rank, dst_rank);
  return depart + sample_delay(LinkLevel::kInterNode, bytes, rng) * factor + extra;
}

sim::Time NetworkModel::ingress_admit(int dst_rank, std::int64_t bytes, sim::Time port_time,
                                      sim::Time depart_ready) {
  const auto dst_node = static_cast<std::size_t>(topo_->locate(dst_rank).node);
  const double nic_busy = params_.nic_gap + params_.nic_per_byte * static_cast<double>(bytes);
  const sim::Time arrive = std::max(port_time, ingress_free_[dst_node]);
  ingress_free_[dst_node] = arrive + nic_busy;
  count_delivery(LinkLevel::kInterNode, bytes, arrive - depart_ready);
  return arrive;
}

sim::Time NetworkModel::transit_time(int src_rank, int dst_rank, std::int64_t bytes,
                                     sim::Time depart_ready, DeliveryFaults* faults) {
  if (!faults || !injector_ || !injector_->net_active()) {
    return egress_to_wire(src_rank, dst_rank, bytes, depart_ready, nullptr);
  }
  const double rto = retransmit_timeout(LinkLevel::kInterNode, bytes);
  sim::Time ready = depart_ready;
  for (int attempt = 0;; ++attempt) {
    fault::NetFaultDecision fd = injector_->on_message(
        src_rank, dst_rank, static_cast<int>(LinkLevel::kInterNode), ready);
    if (attempt >= kMaxRetransmits) fd.drop = false;
    const sim::Time port = egress_to_wire(src_rank, dst_rank, bytes, ready, &fd);
    if (!fd.drop) {
      faults->retransmits = attempt;
      faults->duplicate = fd.duplicate;
      if (attempt > 0) {
        trace::Counter* m =
            shard_metrics_[static_cast<std::size_t>(sim::current_shard())].retransmits;
        if (m) m->inc(static_cast<std::uint64_t>(attempt));
      }
      return port;
    }
    ready += rto;
  }
}

sim::Time NetworkModel::deliver_time(int src_rank, int dst_rank, std::int64_t bytes,
                                     sim::Time depart_ready, DeliveryFaults* faults) {
  const LinkLevel level = classify(src_rank, dst_rank);
  if (!faults || !injector_ || !injector_->net_active()) {
    return deliver_attempt(level, src_rank, dst_rank, bytes, depart_ready, nullptr);
  }
  const double rto = retransmit_timeout(level, bytes);
  sim::Time ready = depart_ready;
  for (int attempt = 0;; ++attempt) {
    fault::NetFaultDecision fd =
        injector_->on_message(src_rank, dst_rank, static_cast<int>(level), ready);
    // The last permitted attempt always goes through: the reliable transport
    // may degrade timing arbitrarily but never loses a message outright.
    if (attempt >= kMaxRetransmits) fd.drop = false;
    const sim::Time arrive = deliver_attempt(level, src_rank, dst_rank, bytes, ready, &fd);
    if (!fd.drop) {
      faults->retransmits = attempt;
      faults->duplicate = fd.duplicate;
      if (attempt > 0) {
        trace::Counter* m =
            shard_metrics_[static_cast<std::size_t>(sim::current_shard())].retransmits;
        if (m) m->inc(static_cast<std::uint64_t>(attempt));
      }
      return arrive;
    }
    ready += rto;
  }
}

sim::Time NetworkModel::deliver_time_uncontended(int src_rank, int dst_rank, std::int64_t bytes,
                                                 sim::Time depart_ready,
                                                 fault::NetFaultDecision* decision) {
  const LinkLevel level = classify(src_rank, dst_rank);
  sim::Rng& rng = channel_rng(src_rank, dst_rank);
  if (decision && injector_ && injector_->net_active()) {
    *decision = injector_->on_message(src_rank, dst_rank, static_cast<int>(level), depart_ready);
    const sim::Time d =
        sample_delay(level, bytes, rng) * decision->delay_factor + decision->extra_delay;
    if (!decision->drop) count_delivery(level, bytes, d);
    return depart_ready + d;
  }
  const sim::Time d = sample_delay(level, bytes, rng);
  count_delivery(level, bytes, d);
  return depart_ready + d;
}

}  // namespace hcs::simmpi
