// Collective operations over a Comm, with selectable algorithms.
//
// Every collective is a genuine message-passing implementation (DESIGN.md
// §4.5): process imbalance, jitter accumulation and NIC contention emerge
// from the message schedule, which is what the paper's Figs. 7-9 measure.
//
// Conventions:
//  * All members of the communicator must call the same collective with the
//    same algorithm, in the same order (MPI semantics).
//  * `wire_bytes` overrides the declared per-block wire size used by the
//    cost model (0 = derive from the payload, minimum 8 B).  Collectives
//    that forward multiple blocks scale the wire size accordingly.
//  * Reductions are elementwise over vectors of equal length on all ranks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "simmpi/comm.hpp"

namespace hcs::simmpi {

enum class BarrierAlgo { kLinear, kTree, kDoubleRing, kBruck, kRecursiveDoubling };
enum class BcastAlgo { kBinomial, kLinear, kChain, kScatterAllgather };
enum class ReduceAlgo { kBinomial, kLinear };
enum class AllreduceAlgo { kRecursiveDoubling, kRing, kReduceBcast, kRabenseifner };
enum class GatherAlgo { kLinear, kBinomial };
enum class ScatterAlgo { kLinear, kBinomial };
enum class AllgatherAlgo { kBruck, kRing };
enum class AlltoallAlgo { kPairwise };
enum class ReduceScatterAlgo { kRing, kReduceThenScatter };
enum class ScanAlgo { kLinear, kRecursiveDoubling };
enum class ReduceOp { kSum, kMin, kMax };

std::string to_string(BarrierAlgo a);
std::string to_string(AllreduceAlgo a);

/// All named barrier algorithms, in the order the paper's Fig. 8 lists them.
const std::vector<BarrierAlgo>& all_barrier_algos();

double apply_op(ReduceOp op, double a, double b);
void accumulate(ReduceOp op, std::vector<double>& into, const std::vector<double>& from);

sim::Task<void> barrier(Comm& comm, BarrierAlgo algo = BarrierAlgo::kTree);

/// Returns the broadcast payload on every rank.
sim::Task<std::vector<double>> bcast(Comm& comm, std::vector<double> data, int root = 0,
                                     BcastAlgo algo = BcastAlgo::kBinomial,
                                     std::int64_t wire_bytes = 0);

/// Returns the reduced vector on `root`, an empty vector elsewhere.
sim::Task<std::vector<double>> reduce(Comm& comm, std::vector<double> data, ReduceOp op,
                                      int root = 0, ReduceAlgo algo = ReduceAlgo::kBinomial,
                                      std::int64_t wire_bytes = 0);

/// Returns the reduced vector on every rank.
sim::Task<std::vector<double>> allreduce(Comm& comm, std::vector<double> data,
                                         ReduceOp op = ReduceOp::kSum,
                                         AllreduceAlgo algo = AllreduceAlgo::kRecursiveDoubling,
                                         std::int64_t wire_bytes = 0);

/// Root receives the concatenation of all ranks' equal-length vectors (rank
/// order); non-roots receive an empty vector.
sim::Task<std::vector<double>> gather(Comm& comm, std::vector<double> mine, int root = 0,
                                      GatherAlgo algo = GatherAlgo::kBinomial,
                                      std::int64_t wire_bytes = 0);

/// Root provides size() * chunk values; every rank returns its chunk.
sim::Task<std::vector<double>> scatter(Comm& comm, std::vector<double> all, std::size_t chunk,
                                       int root = 0, ScatterAlgo algo = ScatterAlgo::kBinomial,
                                       std::int64_t wire_bytes = 0);

/// Every rank returns the concatenation of all ranks' equal-length vectors.
sim::Task<std::vector<double>> allgather(Comm& comm, std::vector<double> mine,
                                         AllgatherAlgo algo = AllgatherAlgo::kBruck,
                                         std::int64_t wire_bytes = 0);

/// sendbuf holds size() chunks of `chunk` values; rank i's returned buffer
/// holds chunk j's data received from rank j.
sim::Task<std::vector<double>> alltoall(Comm& comm, std::vector<double> sendbuf,
                                        std::size_t chunk,
                                        AlltoallAlgo algo = AlltoallAlgo::kPairwise,
                                        std::int64_t wire_bytes = 0);

/// Block reduce-scatter: every rank contributes size() * chunk values and
/// returns its own chunk of the elementwise reduction.
sim::Task<std::vector<double>> reduce_scatter(
    Comm& comm, std::vector<double> data, std::size_t chunk, ReduceOp op = ReduceOp::kSum,
    ReduceScatterAlgo algo = ReduceScatterAlgo::kRing, std::int64_t wire_bytes = 0);

/// Inclusive prefix reduction: rank r returns op(x_0, ..., x_r) elementwise.
sim::Task<std::vector<double>> scan(Comm& comm, std::vector<double> data,
                                    ReduceOp op = ReduceOp::kSum,
                                    ScanAlgo algo = ScanAlgo::kRecursiveDoubling,
                                    std::int64_t wire_bytes = 0);

}  // namespace hcs::simmpi
