#include "simmpi/comm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "simmpi/collectives.hpp"

namespace hcs::simmpi {

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t kWorldContext = 0x57f2'11d3'9ab1'4e01ULL;
}  // namespace

Comm::Comm(World* world, std::shared_ptr<const std::vector<int>> members, int my_index,
           std::uint64_t context)
    : world_(world), members_(std::move(members)), my_index_(my_index), context_(context) {
  if (!world_ || !members_ || my_index_ < 0 ||
      my_index_ >= static_cast<int>(members_->size())) {
    throw std::invalid_argument("Comm: malformed communicator");
  }
}

Comm Comm::world_comm(World& world, int rank) {
  auto members = std::make_shared<std::vector<int>>(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) (*members)[static_cast<std::size_t>(r)] = r;
  return Comm(&world, std::move(members), rank, kWorldContext);
}

Comm Comm::view_comm(World& world, int rank, sim::Time at) {
  // Membership is a pure function of the fault plan, so every up rank that
  // evaluates the same `at` builds the same member list and context without
  // exchanging a single message — the property that lets a restarted rank
  // join a communicator its peers constructed while it was away.
  const fault::FaultInjector* fault = world.fault_injector();
  auto members = std::make_shared<std::vector<int>>();
  members->reserve(static_cast<std::size_t>(world.size()));
  int my_index = -1;
  for (int r = 0; r < world.size(); ++r) {
    if (fault && fault->is_down(r, at)) continue;
    if (r == rank) my_index = static_cast<int>(members->size());
    members->push_back(r);
  }
  const std::uint64_t epoch = world.membership_epoch(at);
  // Epoch 0 (no transition fired yet) must reproduce the world context
  // exactly so armed-but-unfired churn plans stay bit-identical.
  const std::uint64_t context =
      epoch == 0 ? kWorldContext
                 : mix64(kWorldContext ^ (epoch * 0x9e3779b97f4a7c15ULL));
  Comm comm(&world, std::move(members), my_index, context);
  comm.view_epoch_ = epoch;
  return comm;
}

std::int64_t Comm::user_tag(int tag) const {
  // High bits: communicator context; a sentinel sequence keeps user tags
  // disjoint from collective-phase tags.
  return static_cast<std::int64_t>(
      (context_ << 24) ^ 0x00ff'ff00'0000'0000ULL ^ static_cast<std::uint64_t>(tag));
}

std::int64_t Comm::collective_tag(int phase) const {
  // (coll_seq << 16) ^ phase is injective for phase < 2^16; rounds/steps of
  // every implemented algorithm stay below that (steps < world size <= 16k).
  return static_cast<std::int64_t>((context_ << 24) ^ (coll_seq_ << 16) ^
                                   static_cast<std::uint64_t>(phase));
}

sim::Task<void> Comm::send(int dst, int tag, std::vector<double> data, std::int64_t bytes) {
  co_await world_->p2p_send(my_world_rank(), world_rank(dst), user_tag(tag), std::move(data),
                            bytes);
}

sim::Task<Message> Comm::recv(int src, int tag) {
  co_return co_await world_->p2p_recv(my_world_rank(), world_rank(src), user_tag(tag));
}

sim::Task<std::optional<Message>> Comm::recv_ft(int src, int tag) {
  const int me = my_world_rank();
  const int wsrc = world_rank(src);
  const FailureDetector* fd = world_->failure_detector();
  if (!fd) co_return co_await world_->p2p_recv(me, wsrc, user_tag(tag));
  // Bounded by the modelled detection time for a peer that actually dies,
  // plus the liveness net so even a pathological live-live cross-wait
  // terminates (degraded) instead of deadlocking the world.  The deadline is
  // the *next* dead declaration relative to now, so a peer that departed and
  // rejoined earlier does not poison later receives with a stale deadline.
  const sim::Time deadline =
      std::min(fd->detect_time_after(me, wsrc, sim().now()), sim().now() + kLivenessTimeout);
  co_return co_await world_->await_recv_until(world_->p2p_irecv(me, wsrc, user_tag(tag)),
                                              deadline);
}

PeerStatus Comm::peer_status(int comm_rank) const {
  const FailureDetector* fd = world_->failure_detector();
  if (!fd) return PeerStatus::kAlive;
  return fd->status(my_world_rank(), world_rank(comm_rank), sim().now());
}

RecvRequest Comm::irecv(int src, int tag) {
  return world_->p2p_irecv(my_world_rank(), world_rank(src), user_tag(tag));
}

sim::Task<Message> Comm::wait(RecvRequest request) {
  co_return co_await world_->await_recv(std::move(request));
}

SendRequest Comm::isend(int dst, int tag, std::vector<double> data, std::int64_t bytes) {
  return world_->p2p_isend(my_world_rank(), world_rank(dst), user_tag(tag), std::move(data),
                           bytes);
}

sim::Task<void> Comm::wait(SendRequest request) {
  co_await world_->await_send(std::move(request));
}

sim::Task<BurstResult> Comm::pingpong_burst(int partner, bool i_am_client, vclock::Clock& clock,
                                            int nexchanges, std::int64_t bytes) {
  co_return co_await world_->pingpong_burst(my_world_rank(), world_rank(partner), i_am_client,
                                            clock, nexchanges, bytes);
}

// Direct (no-relay) member exchange used by split under the crash model:
// every pair of live ranks always learns about each other, a dead rank's
// slot stays NaN.  O(p^2) messages instead of Bruck's p log p, but immune
// to a relay dying with other ranks' blocks in its hands.
sim::Task<std::vector<double>> Comm::split_exchange_ft(std::vector<double> mine) {
  advance_collective();
  const int p = size();
  const int r = rank();
  const std::int64_t tag = collective_tag(0);
  std::vector<double> all(static_cast<std::size_t>(2 * p),
                          std::numeric_limits<double>::quiet_NaN());
  std::copy(mine.begin(), mine.end(), all.begin() + static_cast<std::ptrdiff_t>(2 * r));
  for (int peer = 0; peer < p; ++peer) {
    if (peer != r) co_await send(peer, tag, mine, 16);
  }
  for (int peer = 0; peer < p; ++peer) {
    if (peer == r) continue;
    std::optional<Message> msg = co_await recv_ft(peer, tag);
    if (msg && msg->data.size() == 2) {
      std::copy(msg->data.begin(), msg->data.end(),
                all.begin() + static_cast<std::ptrdiff_t>(2 * peer));
    }
  }
  co_return all;
}

sim::Task<Comm> Comm::split(int color, int key) {
  // Exchange (color, key) with every member, then build the group locally —
  // the standard MPI_Comm_split recipe.  Under the crash model the exchange
  // is fault-tolerant and dead ranks simply drop out of the new
  // communicator: because members stay sorted, the lowest live rank of each
  // split becomes its rank 0 — deterministic leader election for free.
  const std::vector<double> mine = {static_cast<double>(color), static_cast<double>(key)};
  std::vector<double> all;
  if (world_->failure_detector() && size() > 1) {
    all = co_await split_exchange_ft(mine);
  } else {
    all = co_await allgather(*this, mine);
  }
  ++split_seq_;
  if (color == kUndefined) co_return Comm{};

  struct Entry {
    int key;
    int comm_rank;
  };
  std::vector<Entry> group;
  for (int r = 0; r < size(); ++r) {
    const double rc = all[static_cast<std::size_t>(2 * r)];
    if (std::isnan(rc)) continue;  // dead or unreachable: excluded from the split
    const int r_color = static_cast<int>(rc);
    const int r_key = static_cast<int>(all[static_cast<std::size_t>(2 * r + 1)]);
    if (r_color == color) group.push_back(Entry{r_key, r});
  }
  std::stable_sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.comm_rank < b.comm_rank;
  });
  auto members = std::make_shared<std::vector<int>>();
  members->reserve(group.size());
  int my_new_index = -1;
  for (const Entry& e : group) {
    if (e.comm_rank == my_index_) my_new_index = static_cast<int>(members->size());
    members->push_back(world_rank(e.comm_rank));
  }
  const std::uint64_t new_context =
      mix64(context_ ^ (split_seq_ * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(color) + 0x165667b19e3779f9ULL));
  co_return Comm(world_, std::move(members), my_new_index, new_context);
}

sim::Task<Comm> Comm::split_shared_node() {
  const int node = world_->topo().locate(my_world_rank()).node;
  co_return co_await split(node, my_world_rank());
}

sim::Task<Comm> Comm::split_shared_socket() {
  const int socket = world_->topo().locate(my_world_rank()).socket;
  co_return co_await split(socket, my_world_rank());
}

}  // namespace hcs::simmpi
