// Barrier algorithms (paper §V-B, Figs. 7 and 8).
//
// The imbalance each algorithm induces — the spread of exit times across
// ranks — is a measured quantity in the paper, so these are faithful
// message-schedule implementations of the Open MPI algorithm family.
#include "simmpi/coll_detail.hpp"

namespace hcs::simmpi {

namespace {

// Tokens use the fault-tolerant receive throughout: a token from a dead peer
// simply never arrives and the barrier completes over the surviving quorum.
constexpr std::int64_t kTokenBytes = 8;

sim::Task<void> barrier_linear(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  if (r == 0) {
    for (int src = 1; src < p; ++src) co_await comm.recv_ft(src, comm.collective_tag(0));
    for (int dst = 1; dst < p; ++dst) {
      co_await comm.send(dst, comm.collective_tag(1), {}, kTokenBytes);
    }
  } else {
    co_await comm.send(0, comm.collective_tag(0), {}, kTokenBytes);
    co_await comm.recv_ft(0, comm.collective_tag(1));
  }
}

// Binomial fan-in to rank 0 followed by binomial fan-out.
sim::Task<void> barrier_tree(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  // Fan-in.
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((r & mask) != 0) {
      co_await comm.send(r - mask, comm.collective_tag(64), {}, kTokenBytes);
      break;
    }
    if (r + mask < p) co_await comm.recv_ft(r + mask, comm.collective_tag(64));
  }
  // Fan-out.
  int mask = 1;
  while (mask < p) {
    if ((r & mask) != 0) {
      co_await comm.recv_ft(r - mask, comm.collective_tag(65));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < p) co_await comm.send(r + mask, comm.collective_tag(65), {}, kTokenBytes);
    mask >>= 1;
  }
}

// Two passes of a unidirectional ring token (the Open MPI "double ring").
sim::Task<void> barrier_double_ring(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  const int left = (r - 1 + p) % p;
  const int right = (r + 1) % p;
  for (int round = 0; round < 2; ++round) {
    const std::int64_t tag = comm.collective_tag(round);
    if (r == 0) {
      co_await comm.send(right, tag, {}, kTokenBytes);
      co_await comm.recv_ft(left, tag);
    } else {
      co_await comm.recv_ft(left, tag);
      co_await comm.send(right, tag, {}, kTokenBytes);
    }
  }
}

// Dissemination barrier (Open MPI calls this variant "bruck").
sim::Task<void> barrier_bruck(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    const int to = (r + dist) % p;
    const int from = (r - dist + p) % p;
    const std::int64_t tag = comm.collective_tag(round);
    co_await comm.send(to, tag, {}, kTokenBytes);
    co_await comm.recv_ft(from, tag);
  }
}

// Recursive doubling with the usual fold for non-power-of-two sizes.
sim::Task<void> barrier_recursive_doubling(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  const int pof2 = detail::pof2_floor(p);
  const int rem = p - pof2;

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      co_await comm.send(r + 1, comm.collective_tag(100), {}, kTokenBytes);
      newrank = -1;
    } else {
      co_await comm.recv_ft(r - 1, comm.collective_tag(100));
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }
  if (newrank >= 0) {
    auto real = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int partner = real(newrank ^ mask);
      const std::int64_t tag = comm.collective_tag(101 + round);
      co_await comm.send(partner, tag, {}, kTokenBytes);
      co_await comm.recv_ft(partner, tag);
    }
  }
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      co_await comm.recv_ft(r + 1, comm.collective_tag(200));
    } else {
      co_await comm.send(r - 1, comm.collective_tag(200), {}, kTokenBytes);
    }
  }
}

}  // namespace

sim::Task<void> barrier(Comm& comm, BarrierAlgo algo) {
  HCS_TRACE_SCOPE(Coll, comm.my_world_rank(), "barrier", static_cast<std::int64_t>(algo));
  comm.advance_collective();
  if (comm.size() == 1) co_return;
  switch (algo) {
    case BarrierAlgo::kLinear: co_await barrier_linear(comm); break;
    case BarrierAlgo::kTree: co_await barrier_tree(comm); break;
    case BarrierAlgo::kDoubleRing: co_await barrier_double_ring(comm); break;
    case BarrierAlgo::kBruck: co_await barrier_bruck(comm); break;
    case BarrierAlgo::kRecursiveDoubling: co_await barrier_recursive_doubling(comm); break;
  }
}

}  // namespace hcs::simmpi
