// A single hcs-lint diagnostic.
#pragma once

#include <string>
#include <tuple>

namespace hcs::lint {

enum class Severity { kWarning, kError };

inline const char* to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  std::string path;
  int line = 0;
  int col = 0;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.message) <
           std::tie(b.path, b.line, b.col, b.rule, b.message);
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.col, a.rule, a.message) ==
           std::tie(b.path, b.line, b.col, b.rule, b.message);
  }
};

}  // namespace hcs::lint
