#include "lint/token_scan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace hcs::lint::scan {

bool is(const Token& t, const char* text) { return t.text == text; }
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_ident(const Token& t, const char* text) { return is_ident(t) && t.text == text; }

bool opens(const Token& t) { return is(t, "(") || is(t, "[") || is(t, "{"); }
bool closes(const Token& t) { return is(t, ")") || is(t, "]") || is(t, "}"); }

bool is_assign_op(const Token& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == "=" || t.text == "+=" || t.text == "-=" || t.text == "*=" ||
          t.text == "/=" || t.text == "%=" || t.text == "&=" || t.text == "|=" ||
          t.text == "^=" || t.text == "<<=" || t.text == ">>=");
}

bool is_exit_kw(const Token& t) {
  return is_ident(t, "return") || is_ident(t, "co_return") || is_ident(t, "break") ||
         is_ident(t, "continue") || is_ident(t, "throw");
}

std::size_t match_forward(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (opens(t[k])) ++depth;
    if (closes(t[k]) && --depth == 0) return k;
  }
  return t.size();
}

std::size_t match_backward(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i + 1; k-- > 0;) {
    if (closes(t[k])) ++depth;
    if (opens(t[k]) && --depth == 0) return k;
  }
  return 0;
}

std::size_t stmt_end(const Toks& t, std::size_t b) {
  if (b >= t.size()) return t.size();
  if (is(t[b], "{")) return std::min(match_forward(t, b) + 1, t.size());
  if (is_ident(t[b], "if") || is_ident(t[b], "for") || is_ident(t[b], "while") ||
      is_ident(t[b], "switch")) {
    std::size_t p = b + 1;
    if (p < t.size() && is_ident(t[p], "constexpr")) ++p;  // if constexpr
    if (p >= t.size() || !is(t[p], "(")) return b + 1;
    std::size_t body = std::min(match_forward(t, p) + 1, t.size());
    std::size_t e = stmt_end(t, body);
    if (is_ident(t[b], "if") && e < t.size() && is_ident(t[e], "else")) {
      return stmt_end(t, e + 1);
    }
    return e;
  }
  if (is_ident(t[b], "do")) {
    std::size_t e = stmt_end(t, b + 1);  // body
    while (e < t.size() && !is(t[e], ";")) ++e;
    return std::min(e + 1, t.size());
  }
  int depth = 0;
  for (std::size_t k = b; k < t.size(); ++k) {
    if (opens(t[k])) ++depth;
    if (closes(t[k])) {
      if (depth == 0) return k;  // ran out of the enclosing block
      --depth;
    }
    if (depth == 0 && is(t[k], ";")) return k + 1;
  }
  return t.size();
}

CallKind call_kind(const Toks& t, std::size_t i) {
  if (i + 1 >= t.size() || !is(t[i + 1], "(")) return CallKind::kNone;
  if (i == 0) return CallKind::kNone;
  const Token& prev = t[i - 1];
  if (is(prev, ".") || is(prev, "->")) return CallKind::kMethod;
  std::size_t head = i;
  if (is(prev, "::")) {  // walk back over the qualifier chain
    std::size_t k = i;
    while (k >= 2 && is(t[k - 1], "::") && is_ident(t[k - 2])) k -= 2;
    if (k >= 1 && is(t[k - 1], "::")) --k;  // leading ::name
    head = k;
  }
  if (head == 0) return CallKind::kNone;
  const Token& before = t[head - 1];
  // A type name, template close, attribute close or `~` in front means this
  // is a declaration, definition or destructor, not a call.
  if (is_ident(before)) {
    if (is_exit_kw(before) || is_ident(before, "co_await") || is_ident(before, "co_yield") ||
        is_ident(before, "case") || is_ident(before, "else") || is_ident(before, "do")) {
      return CallKind::kFree;
    }
    return CallKind::kNone;
  }
  if (is(before, ">") || is(before, ">>") || is(before, "]") || is(before, "~") ||
      is(before, "*") || is(before, "&")) {
    return CallKind::kNone;
  }
  return CallKind::kFree;
}

namespace {

bool benign_decl_token(const Token& t) {
  if (is_ident(t)) return true;  // specifiers, trailing-return type names
  return t.text == "::" || t.text == "<" || t.text == ">" || t.text == "&" || t.text == "*" ||
         t.text == "->" || t.text == "...";
}

}  // namespace

std::vector<FuncExtent> function_extents(const Toks& t) {
  std::vector<FuncExtent> out;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (!is(t[j], "{")) continue;
    std::size_t k = j;
    bool found_paren = false;
    while (k-- > 0) {
      if (is(t[k], ")")) {
        found_paren = true;
        break;
      }
      if (!benign_decl_token(t[k])) break;
    }
    if (!found_paren) continue;
    const std::size_t open_paren = match_backward(t, k);
    if (open_paren == 0) continue;
    const Token& callee = t[open_paren - 1];
    if (is_ident(callee, "if") || is_ident(callee, "for") || is_ident(callee, "while") ||
        is_ident(callee, "switch") || is_ident(callee, "catch")) {
      continue;
    }
    FuncExtent fe;
    fe.open = j;
    fe.close = match_forward(t, j);
    fe.lambda = is(callee, "]");
    if (fe.close >= t.size()) continue;
    out.push_back(fe);
  }
  // Mark coroutines: each co_* keyword belongs to the innermost extent.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "co_await") && !is_ident(t[i], "co_return") &&
        !is_ident(t[i], "co_yield")) {
      continue;
    }
    FuncExtent* innermost = nullptr;
    for (auto& fe : out) {
      if (fe.open < i && i < fe.close &&
          (!innermost || fe.close - fe.open < innermost->close - innermost->open)) {
        innermost = &fe;
      }
    }
    if (innermost) innermost->coroutine = true;
  }
  return out;
}

const FuncExtent* enclosing_function(const std::vector<FuncExtent>& fns, std::size_t i) {
  const FuncExtent* best = nullptr;
  for (const auto& fe : fns) {
    if (fe.open < i && i < fe.close && (!best || fe.close - fe.open < best->close - best->open)) {
      best = &fe;
    }
  }
  return best;
}

bool lambda_start(const Toks& t, std::size_t i) {
  if (!is(t[i], "[")) return false;
  if (i + 1 < t.size() && is(t[i + 1], "[")) return false;  // [[attribute]]
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (is_ident(prev)) {
    return is_exit_kw(prev) || is_ident(prev, "co_await") || is_ident(prev, "co_yield") ||
           is_ident(prev, "case") || is_ident(prev, "else") || is_ident(prev, "do");
  }
  if (is(prev, ")") || is(prev, "]") || prev.kind == TokKind::kNumber ||
      prev.kind == TokKind::kString) {
    return false;  // subscript
  }
  return true;
}

std::set<std::string> rank_tainted_vars(const Toks& t) {
  std::set<std::string> rank_vars;
  bool changed = true;
  for (int pass = 0; pass < 5 && changed; ++pass) {
    changed = false;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (!is(t[i], "=") || !is_ident(t[i - 1])) continue;
      const std::string& lhs = t[i - 1].text;
      if (rank_vars.count(lhs)) continue;
      int depth = 0;
      for (std::size_t k = i + 1; k < t.size(); ++k) {
        if (is(t[k], ";") && depth == 0) break;
        if (opens(t[k])) {
          ++depth;
          continue;
        }
        if (closes(t[k])) {
          if (depth == 0) break;
          --depth;
          continue;
        }
        if (depth != 0 || !is_ident(t[k])) continue;
        const bool rank_call =
            (t[k].text == "rank" || t[k].text == "my_world_rank" || t[k].text == "my_index") &&
            k + 1 < t.size() && is(t[k + 1], "(");
        if (rank_call || rank_vars.count(t[k].text)) {
          rank_vars.insert(lhs);
          changed = true;
          break;
        }
      }
    }
  }
  return rank_vars;
}

bool rank_dependent_cond(const Toks& t, const std::set<std::string>& rank_vars, std::size_t b,
                         std::size_t e) {
  static const std::set<std::string> kNeutralCallees = {"peer_status", "locate", "world_rank",
                                                        "detect_time", "status", "at"};
  std::vector<bool> neutral_stack;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (is(t[i], "(")) {
      const bool neutral = i > b && is_ident(t[i - 1]) && kNeutralCallees.count(t[i - 1].text);
      neutral_stack.push_back(neutral);
      continue;
    }
    if (is(t[i], ")")) {
      if (!neutral_stack.empty()) neutral_stack.pop_back();
      continue;
    }
    if (!is_ident(t[i])) continue;
    const bool in_neutral =
        std::any_of(neutral_stack.begin(), neutral_stack.end(), [](bool n) { return n; });
    if (in_neutral) continue;
    if (kNeutralCallees.count(t[i].text)) continue;  // the callee name itself
    const std::string low = lower(t[i].text);
    if (low.find("rank") != std::string::npos || low == "root" || low == "leader" ||
        low == "is_leader" || rank_vars.count(t[i].text)) {
      return true;
    }
  }
  return false;
}

const std::set<std::string>& free_collectives() {
  static const std::set<std::string> k = {"barrier",        "bcast",     "reduce",
                                          "allreduce",      "gather",    "scatter",
                                          "allgather",      "alltoall",  "reduce_scatter",
                                          "scan"};
  return k;
}

const std::set<std::string>& method_collectives() {
  static const std::set<std::string> k = {"split", "split_shared_node", "split_shared_socket"};
  return k;
}

bool is_collective_call(const Toks& t, std::size_t i) {
  const CallKind kind = call_kind(t, i);
  if (kind == CallKind::kMethod) return method_collectives().count(t[i].text) > 0;
  if (kind == CallKind::kFree) return free_collectives().count(t[i].text) > 0;
  return false;
}

std::vector<std::string> collectives_in(const Toks& t, std::size_t b, std::size_t e) {
  std::vector<std::string> names;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (is_ident(t[i]) && is_collective_call(t, i)) names.push_back(t[i].text);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool has_function_exit(const Toks& t, std::size_t b, std::size_t e) {
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (is_ident(t[i], "return") || is_ident(t[i], "co_return")) return true;
  }
  return false;
}

std::string join(const std::vector<std::string>& v) {
  if (v.empty()) return "nothing";
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
  return os.str();
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace hcs::lint::scan
