#include "lint/rules.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>

#include "lint/token_scan.hpp"

namespace hcs::lint {
namespace {

using namespace scan;  // NOLINT(google-build-using-namespace) — rule bodies read as token algebra

// ---------------------------------------------------------------------------
// Shared per-file context
// ---------------------------------------------------------------------------

struct FileCtx {
  const LexedFile& file;
  const std::string& rel_path;
  const Toks& t;
  std::vector<FuncExtent> fns;
  std::set<std::string> rank_vars;  // identifiers holding rank-derived values

  FileCtx(const LexedFile& f, const std::string& rp)
      : file(f),
        rel_path(rp),
        t(f.tokens),
        fns(function_extents(f.tokens)),
        rank_vars(rank_tainted_vars(f.tokens)) {}

  void add(std::vector<Finding>& out, const RuleInfo& rule, const Token& at, std::string message,
           Severity severity) const {
    out.push_back(Finding{rule.id, severity, rel_path, at.line, at.col, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// Rule: coll-rank-branch
// ---------------------------------------------------------------------------

void rule_coll_rank_branch(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "if") || !is(t[i + 1], "(")) continue;
    if (i > 0 && is_ident(t[i - 1], "else")) {
      // An else-if arm was already analyzed as part of the outer if.
    }
    const std::size_t cond_close = match_forward(t, i + 1);
    if (cond_close >= t.size()) continue;
    if (!rank_dependent_cond(t, ctx.rank_vars, i + 2, cond_close)) continue;

    const std::size_t then_b = cond_close + 1;
    const std::size_t then_e = stmt_end(t, then_b);
    std::size_t else_b = then_e, else_e = then_e;
    if (then_e < t.size() && is_ident(t[then_e], "else")) {
      else_b = then_e + 1;
      else_e = stmt_end(t, else_b);
    }
    const std::vector<std::string> in_then = collectives_in(t, then_b, then_e);
    const std::vector<std::string> in_else = collectives_in(t, else_b, else_e);
    if (in_then != in_else) {
      ctx.add(out, rule, t[i],
              "collective calls diverge across a rank-dependent branch: then-branch calls " +
                  join(in_then) + ", else-branch calls " + join(in_else) +
                  " — every rank must reach the same collective sequence",
              rule.severity);
      continue;
    }
    // Matched branches (usually both empty): an early exit on one side still
    // desynchronizes every collective that follows in this function.
    const bool exit_then = has_function_exit(t, then_b, then_e);
    const bool exit_else = else_b != else_e && has_function_exit(t, else_b, else_e);
    if (exit_then == exit_else) continue;
    const FuncExtent* fn = enclosing_function(ctx.fns, i);
    const std::size_t scan_to = fn ? fn->close : t.size();
    const std::vector<std::string> after = collectives_in(t, std::max(then_e, else_e), scan_to);
    if (!after.empty()) {
      ctx.add(out, rule, t[i],
              "rank-dependent early exit skips later collective(s) " + join(after) +
                  " for some ranks — hoist the exit below the collective or make it uniform",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: ft-plain-recv
// ---------------------------------------------------------------------------

void rule_ft_plain_recv(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  bool uses_ft = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i]) && (t[i].text == "recv_ft" || t[i].text == "peer_status") &&
        call_kind(t, i) == CallKind::kMethod) {
      uses_ft = true;
      break;
    }
  }
  if (!uses_ft) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "recv") && call_kind(t, i) == CallKind::kMethod) {
      ctx.add(out, rule, t[i],
              "plain recv() in a file using the failure-detector path (recv_ft/peer_status): "
              "recv blocks forever if the peer has crashed — use recv_ft",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

void rule_wall_clock(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& s = t[i].text;
    const bool chrono_clock =
        s == "system_clock" || s == "steady_clock" || s == "high_resolution_clock";
    const bool c_api =
        (s == "gettimeofday" || s == "clock_gettime") && call_kind(t, i) == CallKind::kFree;
    if (chrono_clock || c_api) {
      ctx.add(out, rule, t[i],
              "wall-clock time source '" + s +
                  "' breaks byte-identical reproducibility — simulated code must use "
                  "sim::Simulation time; host-side timing belongs in src/runner/",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-random
// ---------------------------------------------------------------------------

void rule_raw_random(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  static const std::set<std::string> kEngines = {
      "mt19937",  "mt19937_64", "minstd_rand",           "minstd_rand0",
      "ranlux24", "ranlux48",   "default_random_engine", "knuth_b"};
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& s = t[i].text;
    if (s == "random_device") {
      ctx.add(out, rule, t[i],
              "std::random_device is nondeterministic by construction — derive streams from "
              "the run seed (sim::Rng / World RNG streams)",
              rule.severity);
      continue;
    }
    if ((s == "rand" || s == "srand") && call_kind(t, i) == CallKind::kFree) {
      ctx.add(out, rule, t[i],
              s + "() uses hidden global state and is not seedable per trial — use sim::Rng",
              rule.severity);
      continue;
    }
    if (kEngines.count(s) && i + 1 < t.size() && is_ident(t[i + 1]) &&
        t[i + 1].text.back() != '_') {  // trailing _ = member, seeded in the ctor
      const std::size_t after = i + 2;
      const bool unseeded =
          after < t.size() &&
          (is(t[after], ";") ||
           (is(t[after], "{") && after + 1 < t.size() && is(t[after + 1], "}")));
      if (unseeded) {
        ctx.add(out, rule, t[i],
                "default-constructed random engine '" + t[i + 1].text +
                    "' has an implementation-defined seed — seed it explicitly from the "
                    "run seed",
                rule.severity);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

void rule_unordered_iter(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i]) || t[i].text.rfind("unordered_", 0) != 0) continue;
    std::size_t k = i + 1;
    if (is(t[k], "<")) {  // skip the template argument list
      int depth = 0;
      for (; k < t.size(); ++k) {
        if (is(t[k], "<")) ++depth;
        if (is(t[k], ">") && --depth == 0) {
          ++k;
          break;
        }
        if (is(t[k], ">>") && (depth -= 2) <= 0) {
          ++k;
          break;
        }
      }
    }
    while (k < t.size() && (is(t[k], "&") || is(t[k], "&&") || is(t[k], "*"))) ++k;
    if (k < t.size() && is_ident(t[k]) && t[k].text != "const") {
      unordered_vars.insert(t[k].text);
    }
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "for") || !is(t[i + 1], "(")) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size()) continue;
    // Range-for: a ":" at paren depth 1 with no top-level ";".
    std::size_t colon = 0;
    int depth = 0;
    bool classic = false;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (opens(t[k])) ++depth;
      if (closes(t[k])) --depth;
      if (depth == 1 && is(t[k], ";")) classic = true;
      if (depth == 1 && is(t[k], ":") && colon == 0) colon = k;
    }
    if (classic || colon == 0) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (is_ident(t[k]) &&
          (unordered_vars.count(t[k].text) || t[k].text.rfind("unordered_", 0) == 0)) {
        ctx.add(out, rule, t[i],
                "iteration over std::unordered_* ('" + t[k].text +
                    "') has unspecified order — anything it feeds (exporters, logs, metrics) "
                    "loses byte-identical output; use std::map/std::set or sort first",
                rule.severity);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: co-await-subexpr
// ---------------------------------------------------------------------------

// Scans the operand containing the co_await at `i` for ?:, && or || at the
// co_await's own nesting level.  GCC 12 miscompiles such expressions (frame
// double-free; see the PR-4 Comm::split fix), and evaluation-order subtleties
// make them hazardous even on correct compilers.
bool subexpr_hazard(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k-- > 0;) {  // backward over the operand
    const Token& tok = t[k];
    if (closes(tok)) {
      ++depth;
      continue;
    }
    if (opens(tok)) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    if (depth != 0) continue;
    if (is(tok, ";") || is(tok, "{") || is(tok, "}") || is(tok, ",") || is_assign_op(tok) ||
        is_exit_kw(tok) || is_ident(tok, "co_yield") || is_ident(tok, "co_await")) {
      break;
    }
    if (is(tok, "?") || is(tok, "&&") || is(tok, "||")) return true;
  }
  depth = 0;
  for (std::size_t k = i + 1; k < t.size(); ++k) {  // forward over the operand
    const Token& tok = t[k];
    if (opens(tok)) {
      ++depth;
      continue;
    }
    if (closes(tok)) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    if (depth != 0) continue;
    if (is(tok, ";") || is(tok, ",") || is(tok, "{") || is(tok, "}")) break;
    if (is(tok, "?") || is(tok, "&&") || is(tok, "||")) return true;
  }
  return false;
}

void rule_co_await_subexpr(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "co_await") && subexpr_hazard(t, i)) {
      ctx.add(out, rule, t[i],
              "co_await inside a ?:/&&/|| subexpression — GCC 12 miscompiles these (coroutine "
              "frame double-free, cf. the Comm::split fix); hoist it into its own statement",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: coro-lambda-capture
// ---------------------------------------------------------------------------

void rule_coro_lambda_capture(const FileCtx& ctx, const RuleInfo& rule,
                              std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!lambda_start(t, i)) continue;
    const std::size_t cap_close = match_forward(t, i);
    if (cap_close >= t.size()) continue;
    bool any_capture = false, ref_capture = false;
    for (std::size_t k = i + 1; k < cap_close; ++k) {
      any_capture = true;
      if (is(t[k], "&")) ref_capture = true;
    }
    // Find the body "{": skip template params, parameter list and specifiers.
    std::size_t k = cap_close + 1;
    if (k < t.size() && is(t[k], "<")) {
      int depth = 0;
      for (; k < t.size(); ++k) {
        if (is(t[k], "<")) ++depth;
        if (is(t[k], ">") && --depth == 0) {
          ++k;
          break;
        }
      }
    }
    if (k < t.size() && is(t[k], "(")) k = match_forward(t, k) + 1;
    while (k < t.size() && !is(t[k], "{") && !is(t[k], ";") && !is(t[k], ")")) ++k;
    if (k >= t.size() || !is(t[k], "{")) continue;
    const std::size_t body_open = k;
    const std::size_t body_close = match_forward(t, body_open);
    if (body_close >= t.size()) continue;
    bool is_coro = false;
    for (std::size_t b = body_open + 1; b < body_close; ++b) {
      if (is_ident(t[b], "co_await") || is_ident(t[b], "co_return") ||
          is_ident(t[b], "co_yield")) {
        is_coro = true;
        break;
      }
    }
    if (!is_coro) continue;
    const bool invoked_now = body_close + 1 < t.size() && is(t[body_close + 1], "(");
    if (invoked_now && any_capture) {
      ctx.add(out, rule, t[i],
              "immediately-invoked lambda coroutine with captures: the temporary lambda dies "
              "at the end of this statement while the coroutine frame still points into it — "
              "pass state as parameters or name the lambda with matching lifetime",
              rule.severity);
      continue;
    }
    const bool escapes =
        i > 0 && (is_ident(t[i - 1], "return") || is_ident(t[i - 1], "co_return"));
    if (escapes && ref_capture) {
      ctx.add(out, rule, t[i],
              "returned lambda coroutine captures by reference: the captured locals die with "
              "the enclosing scope before the coroutine runs — capture by value",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: task-discard
// ---------------------------------------------------------------------------

const std::set<std::string>& task_returning() {
  static const std::set<std::string> k = {"send",
                                          "recv",
                                          "recv_ft",
                                          "wait",
                                          "pingpong_burst",
                                          "split",
                                          "split_shared_node",
                                          "split_shared_socket",
                                          "barrier",
                                          "bcast",
                                          "reduce",
                                          "allreduce",
                                          "gather",
                                          "scatter",
                                          "allgather",
                                          "alltoall",
                                          "reduce_scatter",
                                          "scan",
                                          "sync_clocks",
                                          "measure_offset",
                                          "agree_any",
                                          "surviving_quorum",
                                          "p2p_recv",
                                          "p2p_send",
                                          "block_on_recv",
                                          "await_recv_until",
                                          "delay"};
  return k;
}

void rule_task_discard(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || !task_returning().count(t[i].text)) continue;
    if (call_kind(t, i) == CallKind::kNone) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close + 1 >= t.size() || !is(t[close + 1], ";")) continue;
    // Statement scan: bail if the value is consumed (co_await, assignment,
    // return, spawn) or if the call sits inside a larger expression.
    bool consumed = false;
    int depth = 0;
    for (std::size_t k = i; k-- > 0;) {
      const Token& tok = t[k];
      if (closes(tok)) {
        ++depth;
        continue;
      }
      if (opens(tok)) {
        if (depth == 0) {
          // "{" starts the enclosing block (statement position); "(" or "["
          // means the call is an argument of a larger expression.
          consumed = !is(tok, "{");
          break;
        }
        --depth;
        continue;
      }
      if (depth != 0) continue;
      if (is(tok, ";") || is(tok, "}") || is(tok, ":")) break;
      if (is_ident(tok, "co_await") || is_assign_op(tok) || is_exit_kw(tok) ||
          is_ident(tok, "co_yield") || is_ident(tok, "spawn") || is_ident(tok, "for") ||
          is_ident(tok, "while") || is_ident(tok, "if")) {
        consumed = true;
        break;
      }
    }
    if (consumed) continue;
    ctx.add(out, rule, t[i],
            "Task-returning call '" + t[i].text +
                "' is never awaited or stored — the operation is destroyed before it runs; "
                "co_await it (or hand it to Simulation::spawn)",
            rule.severity);
  }
}

// ---------------------------------------------------------------------------
// Rule: shard-shared-state
// ---------------------------------------------------------------------------

// The sharded World engine (docs/parallel-simulation.md) runs one event loop
// per shard, each on its own worker thread.  Rank code and scheduler
// callbacks must therefore (a) read time and RNG streams through their own
// shard's accessors — Comm::sim() / RankCtx::sim() — never through
// World::sim(), which is shard 0's Simulation: the wrong clock for ranks on
// other shards and a data race with shard 0's worker; and (b) never re-point
// the engine-owned thread-local shard context.  Cross-shard effects go
// through the mailbox/outbox API (ordinary sends, drained at window
// boundaries) instead of touching another shard's state directly.
void rule_shard_shared_state(const FileCtx& ctx, const RuleInfo& rule,
                             std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& s = t[i].text;
    if (s == "set_current_shard" && i + 1 < t.size() && is(t[i + 1], "(")) {
      ctx.add(out, rule, t[i],
              "the shard context is owned by the engine's window scheduler — re-pointing it "
              "from rank/callback code lets writes bypass the cross-shard mailbox API; send a "
              "message instead (it lands in the destination shard at the next window boundary)",
              rule.severity);
      continue;
    }
    if (s == "tl_current_shard") {
      ctx.add(out, rule, t[i],
              "direct access to the thread-local shard slot bypasses the scheduler — read it "
              "via sim::current_shard() and never write it outside the engine",
              rule.severity);
      continue;
    }
    // world().sim() / world_->sim(): shard 0's event loop.  Rank code on any
    // other shard reading time or drawing randomness through it observes the
    // wrong clock and races with shard 0's worker thread.
    const bool via_call = is_ident(t[i], "world") && i + 6 < t.size() && is(t[i + 1], "(") &&
                          is(t[i + 2], ")") && is(t[i + 3], ".") && is_ident(t[i + 4], "sim") &&
                          is(t[i + 5], "(") && is(t[i + 6], ")");
    const bool via_member = is_ident(t[i], "world_") && i + 4 < t.size() && is(t[i + 1], "->") &&
                            is_ident(t[i + 2], "sim") && is(t[i + 3], "(") && is(t[i + 4], ")");
    if (via_call || via_member) {
      ctx.add(out, rule, t[i],
              "World::sim() is shard 0's event loop — the wrong clock (and a data race) for "
              "ranks on other shards; read time through Comm::sim() or RankCtx::sim(), which "
              "resolve the rank's owning shard",
              rule.severity);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: soa-point-state
// ---------------------------------------------------------------------------

// Point-struct discovery: struct definitions whose top-level members include
// at least two floating-point fields.  That shape is per-point measurement
// state (timestamp, offset, RTT, ...), and the passes over it — median scans,
// outlier compaction, regression fits — touch one field at a time, so storing
// it array-of-structs pays a wide stride on every pass.
std::set<std::string> point_structs(const Toks& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "struct") || !is_ident(t[i + 1]) || !is(t[i + 2], "{")) continue;
    const std::size_t close = match_forward(t, i + 2);
    int float_members = 0;
    int depth = 0;
    for (std::size_t k = i + 3; k < close && k + 2 < t.size(); ++k) {
      if (opens(t[k])) {
        ++depth;
        continue;
      }
      if (closes(t[k])) {
        --depth;
        continue;
      }
      // A member variable, not a member function returning double.
      if (depth == 0 && (is_ident(t[k], "double") || is_ident(t[k], "float")) &&
          is_ident(t[k + 1]) && !is(t[k + 2], "(")) {
        ++float_members;
      }
    }
    if (float_members >= 2) names.insert(t[i + 1].text);
  }
  return names;
}

void rule_soa_point_state(const FileCtx& ctx, const RuleInfo& rule, std::vector<Finding>& out) {
  const Toks& t = ctx.t;
  // Per-point structs defined in clocksync headers: a vector of these is the
  // exact AoS shape the SoA containers replaced, whether or not the
  // definition is visible in this translation unit.
  static const std::set<std::string> kKnownPointStructs = {"ClockOffset"};
  const std::set<std::string> local = point_structs(t);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "vector") || !is(t[i + 1], "<")) continue;
    // Walk the (possibly qualified) element type.
    std::size_t k = i + 2;
    std::string elem;
    while (k < t.size() && (is_ident(t[k]) || is(t[k], "::"))) {
      if (is_ident(t[k])) elem = t[k].text;
      ++k;
    }
    if (k >= t.size()) continue;
    if (elem == "pair" && is(t[k], "<")) {
      // vector<pair<double, double>>: the two-field point record in disguise.
      int depth = 1;
      int floats = 0;
      for (std::size_t p = k + 1; p < t.size() && depth > 0; ++p) {
        if (is(t[p], "<")) {
          ++depth;
        } else if (is(t[p], ">")) {
          --depth;
        } else if (is(t[p], ">>")) {
          depth -= 2;
        } else if (is_ident(t[p], "double") || is_ident(t[p], "float")) {
          ++floats;
        }
      }
      if (floats < 2) continue;
    } else if (!local.count(elem) && !kKnownPointStructs.count(elem)) {
      continue;
    }
    ctx.add(out, rule, t[i],
            "per-point state stored array-of-structs ('vector<" + elem +
                ">'): every median/outlier/fit pass reads one field at a time with a wide "
                "stride — use the structure-of-arrays containers in clocksync/soa.hpp "
                "(FitPointsSoA / ObsSoA) so scans stay contiguous at 100k+ ranks",
            rule.severity);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule table + dispatch
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kTable = {
      {"coll-rank-branch", Severity::kError, "collective-matching",
       "simmpi collective calls must match across rank-dependent branches", {}},
      {"ft-plain-recv", Severity::kError, "collective-matching",
       "plain recv() is forbidden in files using the failure-detector path", {}},
      {"wall-clock", Severity::kError, "determinism",
       "no wall-clock time sources outside the runner's timing shim", {"src/runner/"}},
      {"raw-random", Severity::kError, "determinism",
       "no rand()/random_device/unseeded engines — randomness derives from the run seed", {}},
      {"unordered-iter", Severity::kError, "determinism",
       "no iteration over unordered containers (unspecified order)", {}},
      {"co-await-subexpr", Severity::kError, "coroutine-lifetime",
       "no co_await inside ?:/&&/|| subexpressions (GCC 12 miscompile class)", {}},
      {"coro-lambda-capture", Severity::kError, "coroutine-lifetime",
       "lambda coroutines must not outlive their captures", {}},
      {"task-discard", Severity::kError, "coroutine-lifetime",
       "Task-returning calls must be co_awaited, stored or spawned", {}},
      {"shard-shared-state", Severity::kError, "determinism",
       "no cross-shard state access from rank code — use the mailbox API and per-rank "
       "shard accessors",
       {"src/sim/shard_context.hpp", "src/simmpi/world.cpp"},
       {}},
      {"soa-point-state", Severity::kError, "performance",
       "per-point clock-sync state uses the SoA containers (clocksync/soa.hpp), not "
       "vectors of point structs",
       {},
       {"src/clocksync/", "tests/lint/fixtures/"}},
      // Interprocedural rules (docs/static-analysis.md, "Whole-program
      // analysis"): run by the project phase over merged per-file summaries,
      // not here — run_interproc_rules in interproc_rules.cpp dispatches
      // them.  Listed in the shared table so ids, severities, exemptions,
      // suppressions and fixtures are handled uniformly.
      {"ip-coll-rank-branch", Severity::kError, "collective-matching",
       "collectives reached through helper calls must match across rank-dependent branches",
       {},
       {},
       /*interprocedural=*/true},
      {"ip-wall-clock", Severity::kError, "determinism",
       "no call chain from sim-visible code into an exempted/suppressed wall-clock read",
       {"src/runner/"},
       {},
       /*interprocedural=*/true},
      {"ip-raw-random", Severity::kError, "determinism",
       "no call chain from sim-visible code into an exempted/suppressed raw-randomness source",
       {},
       {},
       /*interprocedural=*/true},
      {"ip-shard-shared-state", Severity::kError, "determinism",
       "no call chain from rank code into helpers that touch another shard's state",
       {"src/sim/shard_context.hpp", "src/simmpi/world.cpp"},
       {},
       /*interprocedural=*/true},
      {"ip-unchecked-sync-result", Severity::kError, "collective-matching",
       "callers of SyncResult-returning functions must consult the SyncReport health",
       {"tests/"},
       {},
       /*interprocedural=*/true},
  };
  return kTable;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& r : rule_table()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

void run_rules(const LexedFile& file, const std::string& rel_path,
               const std::set<std::string>& enabled, std::vector<Finding>& out,
               const std::function<double()>& now, std::map<std::string, double>* rule_seconds) {
  const FileCtx ctx(file, rel_path);
  for (const auto& rule : rule_table()) {
    if (rule.interprocedural) continue;  // phase 2: run_interproc_rules
    if (!enabled.empty() && !enabled.count(rule.id)) continue;
    const bool exempt =
        std::any_of(rule.exempt_path_prefixes.begin(), rule.exempt_path_prefixes.end(),
                    [&](const std::string& p) { return rel_path.rfind(p, 0) == 0; });
    if (exempt) continue;
    if (!rule.limit_path_prefixes.empty()) {
      const bool within =
          std::any_of(rule.limit_path_prefixes.begin(), rule.limit_path_prefixes.end(),
                      [&](const std::string& p) { return rel_path.rfind(p, 0) == 0; });
      if (!within) continue;
    }
    const double t0 = now ? now() : 0.0;
    if (rule.id == "coll-rank-branch") rule_coll_rank_branch(ctx, rule, out);
    if (rule.id == "ft-plain-recv") rule_ft_plain_recv(ctx, rule, out);
    if (rule.id == "wall-clock") rule_wall_clock(ctx, rule, out);
    if (rule.id == "raw-random") rule_raw_random(ctx, rule, out);
    if (rule.id == "unordered-iter") rule_unordered_iter(ctx, rule, out);
    if (rule.id == "co-await-subexpr") rule_co_await_subexpr(ctx, rule, out);
    if (rule.id == "coro-lambda-capture") rule_coro_lambda_capture(ctx, rule, out);
    if (rule.id == "task-discard") rule_task_discard(ctx, rule, out);
    if (rule.id == "shard-shared-state") rule_shard_shared_state(ctx, rule, out);
    if (rule.id == "soa-point-state") rule_soa_point_state(ctx, rule, out);
    if (now && rule_seconds) (*rule_seconds)[rule.id] += now() - t0;
  }
}

}  // namespace hcs::lint
