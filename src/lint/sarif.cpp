#include "lint/sarif.hpp"

#include <cstdio>
#include <sstream>

#include "lint/rules.hpp"

namespace hcs::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"hcs-lint\",\n"
     << "          \"informationUri\": \"docs/static-analysis.md\",\n"
     << "          \"rules\": [\n";
  const auto& table = rule_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    os << "            {\"id\": \"" << json_escape(table[i].id)
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(table[i].summary)
       << "\"}, \"properties\": {\"category\": \"" << json_escape(table[i].category)
       << "\"}}";
    os << ",\n";
  }
  // The analyzer's own diagnostic for malformed suppression comments.
  os << "            {\"id\": \"bad-suppression\", \"shortDescription\": {\"text\": "
        "\"suppression comment names an unknown rule or uses an unknown form\"}, "
        "\"properties\": {\"category\": \"meta\"}}\n"
     << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": \"" << json_escape(f.rule) << "\", \"level\": \""
       << (f.severity == Severity::kError ? "error" : "warning")
       << "\", \"message\": {\"text\": \"" << json_escape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(f.path) << "\"}, \"region\": {\"startLine\": " << f.line
       << ", \"startColumn\": " << f.col << "}}}]}" << (i + 1 < findings.size() ? "," : "")
       << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace hcs::lint
