// Committed-baseline support: known findings recorded in a file so the tool
// lands clean on an existing tree and only *new* findings fail the build.
//
// Entries are line-number-free: a finding is keyed by (rule, path, normalized
// source-line text) with a count, so unrelated edits that shift line numbers
// do not churn the baseline.  Fix the finding (or move the line) and the
// entry goes stale; `hcs_lint --write-baseline` regenerates the file sorted.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/lexer.hpp"

namespace hcs::lint {

class Baseline {
 public:
  // Parses baseline text (one tab-separated entry per line: count, rule,
  // path, normalized line).  Lines starting with '#' and blank lines are
  // ignored.  Returns false on malformed input (error set to a description).
  // Entries naming a rule id that no longer exists still parse — they can
  // never be consumed, so they only produce a warning (see
  // unknown_rule_warnings), not a hard failure: a renamed rule must not brick
  // every checkout carrying the old baseline.
  bool parse(const std::string& text, std::string* error);

  // One human-readable warning per baseline entry whose rule id is not in the
  // current rule table.  Populated by parse.
  const std::vector<std::string>& unknown_rule_warnings() const {
    return unknown_rule_warnings_;
  }

  // The stable key for a finding: its source line with whitespace collapsed.
  static std::string normalize_line(const std::string& line);
  static std::string key(const Finding& f, const std::vector<std::string>& file_lines);

  // Consumes one baseline credit for the finding if available.  Call once
  // per finding; returns true when the finding is baselined (suppressed).
  bool consume(const Finding& f, const std::vector<std::string>& file_lines);

  // Serializes findings as baseline text (sorted, deduplicated with counts).
  static std::string serialize(const std::vector<Finding>& findings,
                               const std::map<std::string, std::vector<std::string>>& lines);

  bool empty() const { return credits_.empty(); }

 private:
  std::map<std::string, int> credits_;
  std::vector<std::string> unknown_rule_warnings_;
};

}  // namespace hcs::lint
