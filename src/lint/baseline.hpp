// Committed-baseline support: known findings recorded in a file so the tool
// lands clean on an existing tree and only *new* findings fail the build.
//
// Entries are line-number-free: a finding is keyed by (rule, path, normalized
// source-line text) with a count, so unrelated edits that shift line numbers
// do not churn the baseline.  Fix the finding (or move the line) and the
// entry goes stale; `hcs_lint --write-baseline` regenerates the file sorted.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/lexer.hpp"

namespace hcs::lint {

class Baseline {
 public:
  // Parses baseline text (one tab-separated entry per line: count, rule,
  // path, normalized line).  Lines starting with '#' and blank lines are
  // ignored.  Returns false on malformed input (error set to a description).
  bool parse(const std::string& text, std::string* error);

  // The stable key for a finding: its source line with whitespace collapsed.
  static std::string normalize_line(const std::string& line);
  static std::string key(const Finding& f, const std::vector<std::string>& file_lines);

  // Consumes one baseline credit for the finding if available.  Call once
  // per finding; returns true when the finding is baselined (suppressed).
  bool consume(const Finding& f, const std::vector<std::string>& file_lines);

  // Serializes findings as baseline text (sorted, deduplicated with counts).
  static std::string serialize(const std::vector<Finding>& findings,
                               const std::map<std::string, std::vector<std::string>>& lines);

  bool empty() const { return credits_.empty(); }

 private:
  std::map<std::string, int> credits_;
};

}  // namespace hcs::lint
