#include "lint/interproc_rules.hpp"

#include <algorithm>

#include "lint/rules.hpp"

namespace hcs::lint {
namespace {

bool path_exempt(const RuleInfo& rule, const std::string& rel_path) {
  return std::any_of(rule.exempt_path_prefixes.begin(), rule.exempt_path_prefixes.end(),
                     [&](const std::string& p) { return rel_path.rfind(p, 0) == 0; });
}

bool rule_enabled(const std::set<std::string>& enabled, const std::string& id) {
  return enabled.empty() || enabled.count(id) > 0;
}

std::string join_set(const std::set<std::string>& s) {
  if (s.empty()) return "nothing";
  std::string out;
  for (const std::string& v : s) out += (out.empty() ? "" : ", ") + v;
  return out;
}

// ---------------------------------------------------------------------------
// Determinism/shard taint reachability (ip-wall-clock, ip-raw-random,
// ip-shard-shared-state)
// ---------------------------------------------------------------------------

struct TaintRule {
  HazardKind kind;
  const char* ip_id;
  const char* per_file_id;  // whose exemptions/suppressions define "unreported"
  const char* what;         // for messages
};

constexpr TaintRule kTaintRules[] = {
    {HazardKind::kWallClock, "ip-wall-clock", "wall-clock", "a wall-clock time source"},
    {HazardKind::kRawRandom, "ip-raw-random", "raw-random", "a raw-randomness source"},
    {HazardKind::kShardState, "ip-shard-shared-state", "shard-shared-state",
     "engine-owned shard state"},
};

void run_taint_rule(const TaintRule& tr, const std::vector<FileSummary>& files,
                    const ProjectIndex& index, std::size_t max_call_depth,
                    std::vector<Finding>& out) {
  const RuleInfo* ip_rule = find_rule(tr.ip_id);
  const RuleInfo* per_file = find_rule(tr.per_file_id);
  if (!ip_rule || !per_file) return;

  // Sources: hazard sites the per-file rule did NOT report — the file is
  // exempt for it, or the site sits under a suppression comment.  Reported
  // sites already fail the gate on their own; duplicating them across every
  // caller would only add noise.
  std::map<const FunctionSummary*, std::string> tainted;  // fn -> chain to the hazard
  for (const FileSummary& file : files) {
    for (const FunctionSummary& fn : file.functions) {
      for (const HazardSite& h : fn.hazards) {
        if (h.kind != tr.kind) continue;
        const Finding probe{per_file->id, per_file->severity, file.rel_path, h.line, h.col, ""};
        const bool reported =
            !path_exempt(*per_file, file.rel_path) && !is_suppressed(file.suppressions, probe);
        if (reported) continue;
        tainted.emplace(&fn, h.detail + " (" + file.rel_path + ":" + std::to_string(h.line) +
                                 ")");
        break;
      }
    }
  }
  if (tainted.empty()) return;

  // Caller-ward propagation, level-synchronous so max_call_depth is a true
  // bound in call edges regardless of declaration order: each round only
  // consults the taint set as it stood before the round.  Taint crosses
  // exempt files (that is the laundering path); findings below do not land
  // in them.
  for (std::size_t round = 0; round < max_call_depth; ++round) {
    std::map<const FunctionSummary*, std::string> next;
    for (const FileSummary& file : files) {
      for (const FunctionSummary& fn : file.functions) {
        if (tainted.count(&fn)) continue;
        for (const CallSite& c : fn.calls) {
          const FuncRef* callee = index.resolve(c.name);
          if (!callee || !tainted.count(callee->fn)) continue;
          next.emplace(&fn, c.name + " \xe2\x86\x92 " + tainted[callee->fn]);
          break;
        }
      }
    }
    if (next.empty()) break;
    tainted.insert(next.begin(), next.end());
  }

  // One finding per call edge from a non-exempt function into taint.
  for (const FileSummary& file : files) {
    if (path_exempt(*ip_rule, file.rel_path)) continue;
    for (const FunctionSummary& fn : file.functions) {
      for (const CallSite& c : fn.calls) {
        const FuncRef* callee = index.resolve(c.name);
        if (!callee || !tainted.count(callee->fn)) continue;
        out.push_back(Finding{
            ip_rule->id, ip_rule->severity, file.rel_path, c.line, c.col,
            "call chain reaches " + std::string(tr.what) + ": " + c.name + " \xe2\x86\x92 " +
                tainted[callee->fn] +
                " — the per-file " + per_file->id +
                " rule cannot see this from the caller; break the chain or justify it with a "
                "suppression at this call site"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ip-coll-rank-branch
// ---------------------------------------------------------------------------

void run_coll_rank_branch(const std::vector<FileSummary>& files, const ProjectIndex& index,
                          std::size_t max_call_depth, std::vector<Finding>& out) {
  const RuleInfo* rule = find_rule("ip-coll-rank-branch");
  if (!rule) return;

  // Transitive collective bags: colls*(f) = direct(f) ∪ colls*(callees), to a
  // fixpoint bounded by max_call_depth rounds.
  std::map<const FunctionSummary*, std::set<std::string>> bags;
  for (const FileSummary& file : files) {
    for (const FunctionSummary& fn : file.functions) {
      bags[&fn].insert(fn.direct_colls.begin(), fn.direct_colls.end());
    }
  }
  for (std::size_t round = 0; round < max_call_depth; ++round) {
    bool changed = false;
    for (const FileSummary& file : files) {
      for (const FunctionSummary& fn : file.functions) {
        std::set<std::string>& bag = bags[&fn];
        for (const CallSite& c : fn.calls) {
          const FuncRef* callee = index.resolve(c.name);
          if (!callee) continue;
          for (const std::string& coll : bags[callee->fn]) {
            if (bag.insert(coll).second) changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  const auto bag_through = [&](const std::vector<std::string>& direct,
                               const std::vector<std::string>& calls) {
    std::set<std::string> bag(direct.begin(), direct.end());
    for (const std::string& name : calls) {
      const FuncRef* callee = index.resolve(name);
      if (callee) bag.insert(bags[callee->fn].begin(), bags[callee->fn].end());
    }
    return bag;
  };

  for (const FileSummary& file : files) {
    if (path_exempt(*rule, file.rel_path)) continue;
    for (const FunctionSummary& fn : file.functions) {
      for (const RankBranchSummary& rb : fn.rank_branches) {
        // The per-file rule owns direct divergence; this rule only fires when
        // the arms look identical file-locally but helpers hide collectives.
        if (rb.then_colls != rb.else_colls) continue;
        const std::set<std::string> then_bag = bag_through(rb.then_colls, rb.then_calls);
        const std::set<std::string> else_bag = bag_through(rb.else_colls, rb.else_calls);
        if (then_bag != else_bag) {
          out.push_back(Finding{
              rule->id, rule->severity, file.rel_path, rb.line, rb.col,
              "collective calls diverge across a rank-dependent branch through helper calls: "
              "then-branch transitively performs " +
                  join_set(then_bag) + ", else-branch " + join_set(else_bag) +
                  " — every rank must reach the same collective sequence"});
          continue;
        }
        if (rb.exit_then == rb.exit_else || !rb.after_colls.empty()) continue;
        std::set<std::string> after_bag;
        for (const std::string& name : rb.after_calls) {
          const FuncRef* callee = index.resolve(name);
          if (callee) after_bag.insert(bags[callee->fn].begin(), bags[callee->fn].end());
        }
        if (!after_bag.empty()) {
          out.push_back(Finding{
              rule->id, rule->severity, file.rel_path, rb.line, rb.col,
              "rank-dependent early exit skips collective(s) " + join_set(after_bag) +
                  " reached through helper calls after the branch — hoist the exit below the "
                  "collective or make it uniform"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ip-unchecked-sync-result
// ---------------------------------------------------------------------------

void run_unchecked_sync_result(const std::vector<FileSummary>& files, const ProjectIndex& index,
                               std::vector<Finding>& out) {
  const RuleInfo* rule = find_rule("ip-unchecked-sync-result");
  if (!rule) return;
  for (const FileSummary& file : files) {
    if (path_exempt(*rule, file.rel_path)) continue;
    for (const FunctionSummary& fn : file.functions) {
      for (const CallSite& c : fn.calls) {
        if (c.use == ResultUse::kConsumed) continue;
        if (!index.all_return_sync_result(c.name)) continue;
        std::string how;
        switch (c.use) {
          case ResultUse::kDiscarded:
            how = "the returned value is discarded";
            break;
          case ResultUse::kConverted:
            how = "the result is narrowed to the clock (implicit ClockPtr conversion / .clock)";
            break;
          default:
            how = "the result is bound but its .report is never consulted";
            break;
        }
        out.push_back(Finding{
            rule->id, rule->severity, file.rel_path, c.line, c.col,
            "'" + c.name + "' returns SyncResult but " + how +
                " — the SyncReport health (round count, residual error, fault verdict) is "
                "dropped; bind the full result and check .report"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_interproc_rules(const std::vector<FileSummary>& files,
                                         const ProjectIndex& index,
                                         const std::set<std::string>& enabled,
                                         std::size_t max_call_depth,
                                         const std::function<double()>& now,
                                         std::map<std::string, double>* rule_seconds) {
  const auto timed = [&](const char* id, const std::function<void()>& body) {
    const double t0 = now ? now() : 0.0;
    body();
    if (now && rule_seconds) (*rule_seconds)[id] += now() - t0;
  };
  std::vector<Finding> out;
  for (const TaintRule& tr : kTaintRules) {
    if (!rule_enabled(enabled, tr.ip_id)) continue;
    timed(tr.ip_id, [&] { run_taint_rule(tr, files, index, max_call_depth, out); });
  }
  if (rule_enabled(enabled, "ip-coll-rank-branch")) {
    timed("ip-coll-rank-branch",
          [&] { run_coll_rank_branch(files, index, max_call_depth, out); });
  }
  if (rule_enabled(enabled, "ip-unchecked-sync-result")) {
    timed("ip-unchecked-sync-result", [&] { run_unchecked_sync_result(files, index, out); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hcs::lint
