#include "lint/analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint/rules.hpp"

namespace hcs::lint {
namespace {

namespace fs = std::filesystem;

struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  // line -> rules allowed there
  std::set<std::string> whole_file;
  std::vector<Finding> bad_annotations;  // unknown rule names in suppressions
};

// Parses "allow(rule-a, rule-b)" bodies out of hcs-lint comments.
std::vector<std::string> parse_rule_list(const std::string& text, std::size_t open) {
  std::vector<std::string> rules;
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) return rules;
  std::string cur;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = text[i];
    if (c == ',' || c == ')') {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur.push_back(c);
    }
  }
  return rules;
}

Suppressions collect_suppressions(const LexedFile& file, const std::string& rel_path) {
  Suppressions sup;
  for (const Comment& c : file.comments) {
    const std::size_t marker = c.text.find("hcs-lint:");
    if (marker == std::string::npos) continue;
    const std::string body = c.text.substr(marker + 9);
    struct Form {
      const char* name;
      int line_offset;  // -1 = whole file
    };
    static constexpr Form kForms[] = {
        {"allow-next-line(", 1}, {"allow-file(", -1}, {"allow(", 0}};
    bool matched = false;
    for (const Form& form : kForms) {
      const std::size_t at = body.find(form.name);
      if (at == std::string::npos) continue;
      matched = true;
      const std::size_t open = at + std::string(form.name).size() - 1;
      for (const std::string& rule : parse_rule_list(body, open)) {
        if (!find_rule(rule)) {
          sup.bad_annotations.push_back(
              Finding{"bad-suppression", Severity::kError, rel_path, c.line, 1,
                      "suppression names unknown rule '" + rule +
                          "' — see tools/hcs_lint --list-rules"});
          continue;
        }
        if (form.line_offset < 0) {
          sup.whole_file.insert(rule);
        } else {
          sup.by_line[c.end_line + form.line_offset].insert(rule);
        }
      }
      break;
    }
    if (!matched) {
      sup.bad_annotations.push_back(
          Finding{"bad-suppression", Severity::kError, rel_path, c.line, 1,
                  "unrecognized hcs-lint comment — expected allow(...), "
                  "allow-next-line(...) or allow-file(...)"});
    }
  }
  return sup;
}

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx" ||
         ext == ".hxx";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("hcs-lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string relative_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path chosen = (ec || rel.empty() || *rel.begin() == "..") ? p : rel;
  return chosen.lexically_normal().generic_string();
}

bool is_fixture_path(const std::string& rel) {
  return rel.find("tests/lint/fixtures") != std::string::npos;
}

std::vector<Finding> analyze_lexed(const LexedFile& file, const std::string& rel_path,
                                   const AnalyzerOptions& options) {
  std::vector<Finding> raw;
  run_rules(file, rel_path, options.enabled_rules, raw);
  const Suppressions sup = collect_suppressions(file, rel_path);
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (sup.whole_file.count(f.rule)) continue;
    const auto it = sup.by_line.find(f.line);
    if (it != sup.by_line.end() && it->second.count(f.rule)) continue;
    kept.push_back(std::move(f));
  }
  for (const Finding& f : sup.bad_annotations) kept.push_back(f);
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace

std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& source,
                                    const AnalyzerOptions& options) {
  return analyze_lexed(lex(rel_path, source), rel_path, options);
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options) {
  const fs::path root = options.root.empty() ? fs::current_path() : fs::path(options.root);
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && cpp_source(entry.path())) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(abs)) {
      files.push_back(abs);
    } else {
      throw std::runtime_error("hcs-lint: no such file or directory: " + abs.string());
    }
  }
  std::sort(files.begin(), files.end());  // directory iteration order is not portable
  files.erase(std::unique(files.begin(), files.end()), files.end());

  AnalysisResult result;
  for (const fs::path& f : files) {
    const std::string rel = relative_to(f, root);
    if (is_fixture_path(rel)) continue;
    const LexedFile lexed = lex(rel, read_file(f));
    std::vector<Finding> findings = analyze_lexed(lexed, rel, options);
    result.lines.emplace(rel, lexed.lines);
    result.findings.insert(result.findings.end(), std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

std::vector<Finding> apply_baseline(const AnalysisResult& result, Baseline baseline) {
  static const std::vector<std::string> kNone;
  std::vector<Finding> fresh;
  for (const Finding& f : result.findings) {
    const auto it = result.lines.find(f.path);
    if (!baseline.consume(f, it == result.lines.end() ? kNone : it->second)) {
      fresh.push_back(f);
    }
  }
  return fresh;
}

}  // namespace hcs::lint
