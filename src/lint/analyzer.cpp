#include "lint/analyzer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint/callgraph.hpp"
#include "lint/interproc_rules.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/summary.hpp"

namespace hcs::lint {
namespace {

namespace fs = std::filesystem;

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx" ||
         ext == ".hxx";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("hcs-lint: cannot read " + p.string() + ": " +
                             std::strerror(errno));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("hcs-lint: read error on " + p.string() + ": " +
                             std::strerror(errno));
  }
  return ss.str();
}

std::string relative_to(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path chosen = (ec || rel.empty() || *rel.begin() == "..") ? p : rel;
  return chosen.lexically_normal().generic_string();
}

bool is_fixture_path(const std::string& rel) {
  return rel.find("tests/lint/fixtures") != std::string::npos;
}

// Mirrors Lexer::split_lines so cache hits (which skip the lexer) key
// baselines identically to cold runs.
std::vector<std::string> split_lines(const std::string& src) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : src) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool keep_rule(const std::set<std::string>& enabled, const std::string& rule) {
  // bad-suppression diagnostics always surface: a typo in an allow() comment
  // must not hide behind --rule selection.
  return enabled.empty() || enabled.count(rule) > 0 || rule == "bad-suppression";
}

std::uint64_t summary_cache_key(const std::string& rel_path, const std::string& content) {
  std::string key_src = "hcs-lint-summary ";
  key_src += std::to_string(kSummaryFormatVersion);
  key_src += '\n';
  key_src += rel_path;
  key_src += '\n';
  key_src += content;
  return fnv1a64(key_src);
}

fs::path cache_entry_path(const std::string& cache_dir, std::uint64_t key) {
  std::ostringstream name;
  name << std::hex << key;
  return fs::path(cache_dir) / (name.str() + ".sum");
}

// Loads a cached summary for (rel_path, content); returns false on miss or
// any mismatch (version, shape, stale path/hash) so the caller re-lexes.
bool load_cached_summary(const std::string& cache_dir, const std::string& rel_path,
                         std::uint64_t key, FileSummary* out) {
  const fs::path entry = cache_entry_path(cache_dir, key);
  std::error_code ec;
  if (!fs::is_regular_file(entry, ec)) return false;
  std::ifstream in(entry, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!parse_summary(ss.str(), out)) return false;
  return out->rel_path == rel_path && out->source_hash == key;
}

void store_cached_summary(const std::string& cache_dir, const FileSummary& summary) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  if (ec) return;  // caching is best-effort: a read-only dir degrades to cold runs
  const fs::path entry = cache_entry_path(cache_dir, summary.source_hash);
  std::ofstream out(entry, std::ios::binary | std::ios::trunc);
  if (out) out << serialize_summary(summary);
}

// The full two-phase pipeline over already-read (rel_path, content) pairs.
AnalysisResult analyze_contents(const std::vector<std::pair<std::string, std::string>>& sources,
                                const AnalyzerOptions& options) {
  const auto& now = options.now;
  const double t_start = now ? now() : 0.0;
  AnalysisResult result;
  std::map<std::string, double> rule_seconds;

  // Phase 1: per-file summaries, via the cache when possible.
  std::vector<FileSummary> summaries;
  summaries.reserve(sources.size());
  for (const auto& [rel, content] : sources) {
    const std::uint64_t key = summary_cache_key(rel, content);
    FileSummary summary;
    if (!options.cache_dir.empty() &&
        load_cached_summary(options.cache_dir, rel, key, &summary)) {
      result.stats.cache_hits += 1;
      result.lines.emplace(rel, split_lines(content));
    } else {
      const LexedFile lexed = lex(rel, content);
      summary = build_summary(lexed, rel, now, &rule_seconds);
      summary.source_hash = key;
      if (!options.cache_dir.empty()) store_cached_summary(options.cache_dir, summary);
      result.stats.files_lexed += 1;
      result.lines.emplace(rel, lexed.lines);
    }
    summaries.push_back(std::move(summary));
  }
  result.stats.files = static_cast<int>(summaries.size());
  const double t_phase1 = now ? now() : 0.0;
  result.stats.summary_seconds = t_phase1 - t_start;

  // Assembly of per-file findings: rule selection + suppression comments.
  for (const FileSummary& s : summaries) {
    for (const Finding& f : s.local_findings) {
      if (!keep_rule(options.enabled_rules, f.rule)) continue;
      if (f.rule != "bad-suppression" && is_suppressed(s.suppressions, f)) continue;
      result.findings.push_back(f);
    }
  }

  // Phase 2: project index + interprocedural rules.
  const ProjectIndex index = ProjectIndex::build(summaries);
  std::vector<Finding> ip = run_interproc_rules(summaries, index, options.enabled_rules,
                                                options.max_call_depth, now, &rule_seconds);
  std::map<std::string, const SuppressionSummary*> sup_by_path;
  for (const FileSummary& s : summaries) sup_by_path.emplace(s.rel_path, &s.suppressions);
  for (Finding& f : ip) {
    const auto it = sup_by_path.find(f.path);
    if (it != sup_by_path.end() && is_suppressed(*it->second, f)) continue;
    result.findings.push_back(std::move(f));
  }
  result.stats.interproc_seconds = (now ? now() : 0.0) - t_phase1;

  std::sort(result.findings.begin(), result.findings.end());
  for (const Finding& f : result.findings) result.stats.rules[f.rule].findings += 1;
  for (const auto& [id, secs] : rule_seconds) result.stats.rules[id].seconds += secs;
  result.stats.total_seconds = (now ? now() : 0.0) - t_start;
  return result;
}

}  // namespace

std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& source,
                                    const AnalyzerOptions& options) {
  const FileSummary summary = build_summary(lex(rel_path, source), rel_path);
  std::vector<Finding> kept;
  for (const Finding& f : summary.local_findings) {
    if (!keep_rule(options.enabled_rules, f.rule)) continue;
    if (f.rule != "bad-suppression" && is_suppressed(summary.suppressions, f)) continue;
    kept.push_back(f);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

AnalysisResult analyze_sources(const std::vector<std::pair<std::string, std::string>>& sources,
                               const AnalyzerOptions& options) {
  return analyze_contents(sources, options);
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options) {
  const fs::path root = options.root.empty() ? fs::current_path() : fs::path(options.root);
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && cpp_source(entry.path())) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(abs)) {
      files.push_back(abs);
    } else if (!fs::exists(abs)) {
      throw std::runtime_error("hcs-lint: no such file or directory: " + abs.string());
    } else {
      throw std::runtime_error("hcs-lint: not a regular file or directory: " + abs.string());
    }
  }
  std::sort(files.begin(), files.end());  // directory iteration order is not portable
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  std::size_t skipped_fixtures = 0;
  for (const fs::path& f : files) {
    const std::string rel = relative_to(f, root);
    if (is_fixture_path(rel)) {
      ++skipped_fixtures;
      continue;
    }
    sources.emplace_back(rel, read_file(f));
  }
  // Nothing lintable is an error (a mistyped path should not pass as clean) —
  // unless everything found was a deliberately-skipped fixture.
  if (sources.empty() && skipped_fixtures == 0) {
    throw std::runtime_error(
        "hcs-lint: no C++ sources found under the given paths — check the path arguments");
  }
  return analyze_contents(sources, options);
}

std::vector<Finding> apply_baseline(const AnalysisResult& result, Baseline baseline) {
  static const std::vector<std::string> kNone;
  std::vector<Finding> fresh;
  for (const Finding& f : result.findings) {
    const auto it = result.lines.find(f.path);
    if (!baseline.consume(f, it == result.lines.end() ? kNone : it->second)) {
      fresh.push_back(f);
    }
  }
  return fresh;
}

}  // namespace hcs::lint
