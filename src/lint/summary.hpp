// Per-file summaries for whole-program hcs-lint (phase 1 of 2).
//
// A FileSummary is everything the project-wide phase needs to know about one
// translation unit without re-reading it: every function definition with its
// call sites, the collectives it performs directly, the determinism/shard
// hazard sites it contains, the shape of its rank-dependent branches, the
// per-file findings (all rules, pre-filter) and the suppression tables.
// Summaries are config-independent — rule selection and baselines are applied
// later — so they can be serialized into the incremental cache
// (`hcs_lint --cache <dir>`) keyed on the file's content hash and reused
// verbatim while the file is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/lexer.hpp"

namespace hcs::lint {

// Bump when the summary shape or extraction semantics change: stale cache
// entries then miss instead of feeding the project phase outdated facts.
inline constexpr int kSummaryFormatVersion = 1;

enum class HazardKind {
  kWallClock = 0,   // chrono clocks, gettimeofday, clock_gettime
  kRawRandom = 1,   // random_device, rand/srand, unseeded engines
  kShardState = 2,  // shard-context writes, World::sim() reads
};

// How a call site treats the value the callee returns.  Only meaningful once
// the project phase knows the callee returns SyncResult; classified for every
// call at extraction time because the summary cannot see other files.
enum class ResultUse {
  kDiscarded = 0,       // bare `co_await f(...);` — value dropped entirely
  kConverted = 1,       // bound via the implicit ClockPtr conversion (or .clock)
  kBoundUnchecked = 2,  // bound to auto/SyncResult but .report never consulted
  kConsumed = 3,        // returned, escaped, or .report read — caller's business
};

struct CallSite {
  std::string name;  // base callee name (qualifiers stripped)
  bool method = false;
  int line = 0;
  int col = 0;
  ResultUse use = ResultUse::kConsumed;
};

struct HazardSite {
  HazardKind kind = HazardKind::kWallClock;
  int line = 0;
  int col = 0;
  std::string detail;  // the offending identifier, e.g. "system_clock"
};

// One rank-dependent `if` inside a function: what each arm does directly.
// The per-file coll-rank-branch rule fires when the *direct* collectives
// diverge; the interprocedural rule fires when they match but the transitive
// bags (through then_calls/else_calls) do not.
struct RankBranchSummary {
  int line = 0;
  int col = 0;
  bool exit_then = false;
  bool exit_else = false;
  std::vector<std::string> then_colls, else_colls, after_colls;  // sorted
  std::vector<std::string> then_calls, else_calls, after_calls;  // sorted, deduped
};

struct FunctionSummary {
  std::string name;       // base name
  std::string qualifier;  // innermost Class:: / ns:: qualifier, if written
  int line = 0;
  bool returns_sync_result = false;
  std::vector<std::string> direct_colls;  // sorted, deduped
  std::vector<CallSite> calls;            // non-collective project-call candidates
  std::vector<HazardSite> hazards;
  std::vector<RankBranchSummary> rank_branches;
};

struct SuppressionSummary {
  std::map<int, std::set<std::string>> by_line;  // line -> rule ids allowed there
  std::set<std::string> whole_file;
};

struct FileSummary {
  std::string rel_path;
  std::uint64_t source_hash = 0;
  std::vector<FunctionSummary> functions;
  // Findings from every per-file rule plus bad-suppression diagnostics,
  // before rule selection and suppression filtering (both are config).
  std::vector<Finding> local_findings;
  SuppressionSummary suppressions;
};

std::uint64_t fnv1a64(const std::string& data);

// Parses the hcs-lint suppression comments out of a lexed file.  Unknown rule
// names and malformed forms are reported into `bad_annotations` when
// provided.
SuppressionSummary collect_suppressions(const LexedFile& file, const std::string& rel_path,
                                        std::vector<Finding>* bad_annotations);

bool is_suppressed(const SuppressionSummary& sup, const Finding& f);

// Phase 1: extracts the full summary (functions, hazards, branches, findings,
// suppressions) from one lexed file.  `now`/`rule_seconds` (both optional)
// accumulate per-rule runtimes for --stats; the library takes no timings of
// its own.
FileSummary build_summary(const LexedFile& file, const std::string& rel_path,
                          const std::function<double()>& now = {},
                          std::map<std::string, double>* rule_seconds = nullptr);

// Line-oriented text round-trip for the incremental cache.  parse_summary
// returns false (leaving *out unspecified) on a version or shape mismatch, so
// callers fall back to re-lexing.
std::string serialize_summary(const FileSummary& summary);
bool parse_summary(const std::string& text, FileSummary* out);

}  // namespace hcs::lint
