#include "lint/summary.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "lint/rules.hpp"
#include "lint/token_scan.hpp"

namespace hcs::lint {
namespace {

using namespace scan;  // NOLINT(google-build-using-namespace) — extraction is token algebra

// ---------------------------------------------------------------------------
// Suppression comments
// ---------------------------------------------------------------------------

// Parses "allow(rule-a, rule-b)" bodies out of hcs-lint comments.
std::vector<std::string> parse_rule_list(const std::string& text, std::size_t open) {
  std::vector<std::string> rules;
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) return rules;
  std::string cur;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = text[i];
    if (c == ',' || c == ')') {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur.push_back(c);
    }
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Function discovery
// ---------------------------------------------------------------------------

bool benign_decl_token(const Token& t) {
  if (is_ident(t)) return true;  // specifiers, trailing-return type names
  return t.text == "::" || t.text == "<" || t.text == ">" || t.text == "&" || t.text == "*" ||
         t.text == "->" || t.text == "...";
}

// Names whose "(...)  {" shape is not a function definition.
bool non_function_name(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" || s == "catch" ||
         s == "return" || s == "noexcept" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "alignas";
}

// Locates the parameter-list ")" for the body "{" at fe.open, walking back
// over specifiers and skipping constructor member-initializer entries
// (": a_(x), b_(y)").  Returns npos when the shape is not a definition.
std::size_t param_rparen(const Toks& t, std::size_t body_open) {
  std::size_t k = body_open;
  while (true) {
    // Walk back over declaration-ish tokens to the nearest ")".
    bool found = false;
    while (k-- > 0) {
      if (is(t[k], ")")) {
        found = true;
        break;
      }
      if (!benign_decl_token(t[k])) return std::string::npos;
    }
    if (!found) return std::string::npos;
    const std::size_t open = match_backward(t, k);
    if (open == 0) return std::string::npos;
    // A member-initializer entry: "name(...)" preceded by ":" or ",".
    if (is_ident(t[open - 1]) && open >= 2 && (is(t[open - 2], ":") || is(t[open - 2], ","))) {
      k = open - 1;
      continue;
    }
    // A braced init entry "name{...}" never reaches here (no ")").
    return k;
  }
}

struct NamedFn {
  FuncExtent fe;
  std::string name, qualifier;
  int line = 0;
  bool returns_sync_result = false;
};

std::vector<NamedFn> named_functions(const Toks& t, const std::vector<FuncExtent>& extents) {
  std::vector<NamedFn> out;
  for (const FuncExtent& fe : extents) {
    if (fe.lambda) continue;
    const std::size_t rparen = param_rparen(t, fe.open);
    if (rparen == std::string::npos) continue;
    const std::size_t lparen = match_backward(t, rparen);
    if (lparen == 0) continue;
    const std::size_t name_idx = lparen - 1;
    if (!is_ident(t[name_idx]) || non_function_name(t[name_idx].text)) continue;
    NamedFn fn;
    fn.fe = fe;
    fn.name = t[name_idx].text;
    fn.line = t[name_idx].line;
    std::size_t head = name_idx;
    if (name_idx >= 2 && is(t[name_idx - 1], "::") && is_ident(t[name_idx - 2])) {
      fn.qualifier = t[name_idx - 2].text;
      head = name_idx - 2;
    }
    // Return type: the declaration tokens before the (possibly qualified)
    // name, plus the trailing-return span between ")" and "{".
    for (std::size_t p = head, steps = 0; p-- > 0 && steps < 40; ++steps) {
      const Token& tt = t[p];
      if (is(tt, ";") || is(tt, "{") || is(tt, "}") || is(tt, ")") || is(tt, "(") ||
          is(tt, ",")) {
        break;
      }
      if (is_ident(tt, "SyncResult")) fn.returns_sync_result = true;
    }
    for (std::size_t p = rparen + 1; p < fe.open; ++p) {
      if (is_ident(t[p], "SyncResult")) fn.returns_sync_result = true;
    }
    out.push_back(std::move(fn));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Call sites
// ---------------------------------------------------------------------------

// Common std-ish member/algorithm names that must never resolve to a project
// function: a lone project definition of e.g. clear() would otherwise absorb
// every container clear() in the repo and fabricate call edges.
const std::set<std::string>& ignored_callees() {
  static const std::set<std::string> k = {
      "size",    "empty",        "clear",     "begin",       "end",        "push_back",
      "emplace", "emplace_back", "pop_back",  "reserve",     "resize",     "at",
      "front",   "back",         "insert",    "erase",       "find",       "count",
      "data",    "get",          "reset",     "c_str",       "str",        "substr",
      "append",  "first",        "second",    "swap",        "min",        "max",
      "abs",     "move",         "forward",   "sort",        "stable_sort", "to_string",
      "value",   "has_value",    "value_or",  "assign",      "length",     "rfind",
      "push",    "pop",          "top",       "lower_bound", "upper_bound", "contains",
      "tie",     "make_pair",    "make_unique", "make_shared", "emplace_hint"};
  return k;
}

// First token of the postfix expression whose callee name sits at `i`:
// walks back over "ns::", receiver chains "a.b->" and receiver calls
// "world().".
std::size_t expr_head(const Toks& t, std::size_t i) {
  std::size_t k = i;
  while (k > 0) {
    const Token& prev = t[k - 1];
    if (is(prev, "::")) {
      if (k >= 2 && is_ident(t[k - 2])) {
        k -= 2;
        continue;
      }
      --k;  // leading ::name
      continue;
    }
    if (is(prev, ".") || is(prev, "->")) {
      if (k >= 2 && is_ident(t[k - 2])) {
        k -= 2;
        continue;
      }
      if (k >= 2 && is(t[k - 2], ")")) {
        const std::size_t open = match_backward(t, k - 2);
        if (open == 0) return k;
        if (is_ident(t[open - 1])) {
          k = open - 1;
          continue;
        }
        return open;
      }
      break;
    }
    break;
  }
  return k;
}

ResultUse classify_use(const Toks& t, std::size_t i, const FuncExtent& fe) {
  const std::size_t close = match_forward(t, i + 1);
  std::size_t after = close + 1;
  while (after < t.size() && is(t[after], ")")) ++after;  // (co_await f(...)).x
  if (after + 1 < t.size() && (is(t[after], ".") || is(t[after], "->"))) {
    // Immediate member access: picking .clock alone still drops the report.
    return is_ident(t[after + 1], "clock") ? ResultUse::kConverted : ResultUse::kConsumed;
  }
  const std::size_t head = expr_head(t, i);
  int depth = 0;
  for (std::size_t k = head; k-- > fe.open;) {
    const Token& tok = t[k];
    if (closes(tok)) {
      // "(void)f(...);" — an explicit discard is a deliberate, reviewable
      // decision, unlike silently dropping the value.
      if (depth == 0 && is(tok, ")") && k >= 2 && is_ident(t[k - 1], "void") &&
          is(t[k - 2], "(")) {
        return ResultUse::kConsumed;
      }
      ++depth;
      continue;
    }
    if (opens(tok)) {
      if (depth == 0) {
        if (is(tok, "{")) break;         // statement position in a block
        return ResultUse::kConsumed;     // argument of a larger expression
      }
      --depth;
      continue;
    }
    if (depth != 0) continue;
    if (is(tok, ";") || is(tok, "}")) break;  // statement position
    if (is_ident(tok, "co_await")) continue;
    if (is_assign_op(tok)) {
      if (k == 0 || !is_ident(t[k - 1])) return ResultUse::kConsumed;
      const std::string var = t[k - 1].text;
      bool clockptr = false, tracked = false;
      for (std::size_t p = k - 1; p-- > fe.open;) {
        const Token& tt = t[p];
        if (!benign_decl_token(tt)) break;
        if (is_ident(tt, "ClockPtr")) clockptr = true;
        if (is_ident(tt, "auto") || is_ident(tt, "SyncResult")) tracked = true;
      }
      if (clockptr) return ResultUse::kConverted;
      if (!tracked) return ResultUse::kConsumed;  // assignment to an existing object
      // auto/SyncResult binding: does anything ever look past .clock?
      for (std::size_t p = close + 1; p < fe.close; ++p) {
        if (!is_ident(t[p]) || t[p].text != var) continue;
        if (p + 2 < t.size() && (is(t[p + 1], ".") || is(t[p + 1], "->"))) {
          if (is_ident(t[p + 2], "clock")) continue;
          return ResultUse::kConsumed;  // .report (or any other member) consulted
        }
        return ResultUse::kConsumed;  // the whole value escapes (argument, return, copy)
      }
      return ResultUse::kBoundUnchecked;
    }
    // Any other operator, keyword or identifier means the value feeds a
    // larger expression (return f(), !f(), cond ? f() : g(), ...).
    return ResultUse::kConsumed;
  }
  // Statement-lead "[co_await] f(...);": the value is dropped entirely.
  return (after < t.size() && is(t[after], ";")) ? ResultUse::kDiscarded : ResultUse::kConsumed;
}

// ---------------------------------------------------------------------------
// Hazard sites
// ---------------------------------------------------------------------------

void scan_hazards(const Toks& t, const FuncExtent& fe, std::vector<HazardSite>& out) {
  static const std::set<std::string> kEngines = {
      "mt19937",  "mt19937_64", "minstd_rand",           "minstd_rand0",
      "ranlux24", "ranlux48",   "default_random_engine", "knuth_b"};
  for (std::size_t i = fe.open + 1; i < fe.close; ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& s = t[i].text;
    // Wall clock.
    if (s == "system_clock" || s == "steady_clock" || s == "high_resolution_clock" ||
        ((s == "gettimeofday" || s == "clock_gettime") && call_kind(t, i) == CallKind::kFree)) {
      out.push_back({HazardKind::kWallClock, t[i].line, t[i].col, s});
      continue;
    }
    // Raw randomness.
    if (s == "random_device" ||
        ((s == "rand" || s == "srand") && call_kind(t, i) == CallKind::kFree)) {
      out.push_back({HazardKind::kRawRandom, t[i].line, t[i].col, s});
      continue;
    }
    if (kEngines.count(s) && i + 1 < t.size() && is_ident(t[i + 1]) &&
        t[i + 1].text.back() != '_') {
      const std::size_t after = i + 2;
      const bool unseeded =
          after < t.size() &&
          (is(t[after], ";") ||
           (is(t[after], "{") && after + 1 < t.size() && is(t[after + 1], "}")));
      if (unseeded) out.push_back({HazardKind::kRawRandom, t[i].line, t[i].col, s});
      continue;
    }
    // Shard confinement.  Writes only: current_shard() and other sanctioned
    // reads of the thread-local slot are not escape hatches.
    if (s == "set_current_shard" && i + 1 < t.size() && is(t[i + 1], "(")) {
      out.push_back({HazardKind::kShardState, t[i].line, t[i].col, s});
      continue;
    }
    if (s == "tl_current_shard" && i + 1 < t.size() &&
        (is_assign_op(t[i + 1]) || is(t[i + 1], "++") || is(t[i + 1], "--"))) {
      out.push_back({HazardKind::kShardState, t[i].line, t[i].col, s});
      continue;
    }
    const bool via_call = s == "world" && i + 6 < t.size() && is(t[i + 1], "(") &&
                          is(t[i + 2], ")") && is(t[i + 3], ".") && is_ident(t[i + 4], "sim") &&
                          is(t[i + 5], "(") && is(t[i + 6], ")");
    const bool via_member = s == "world_" && i + 4 < t.size() && is(t[i + 1], "->") &&
                            is_ident(t[i + 2], "sim") && is(t[i + 3], "(") && is(t[i + 4], ")");
    if (via_call || via_member) {
      out.push_back({HazardKind::kShardState, t[i].line, t[i].col, "World::sim()"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rank branches
// ---------------------------------------------------------------------------

std::vector<std::string> call_names_in(const Toks& t, std::size_t b, std::size_t e) {
  std::vector<std::string> names;
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (!is_ident(t[i]) || call_kind(t, i) == CallKind::kNone) continue;
    if (is_collective_call(t, i) || ignored_callees().count(t[i].text)) continue;
    names.push_back(t[i].text);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void scan_rank_branches(const Toks& t, const FuncExtent& fe,
                        const std::set<std::string>& rank_vars,
                        std::vector<RankBranchSummary>& out) {
  for (std::size_t i = fe.open + 1; i + 1 < fe.close; ++i) {
    if (!is_ident(t[i], "if") || !is(t[i + 1], "(")) continue;
    const std::size_t cond_close = match_forward(t, i + 1);
    if (cond_close >= fe.close) continue;
    if (!rank_dependent_cond(t, rank_vars, i + 2, cond_close)) continue;
    const std::size_t then_b = cond_close + 1;
    const std::size_t then_e = stmt_end(t, then_b);
    std::size_t else_b = then_e, else_e = then_e;
    if (then_e < t.size() && is_ident(t[then_e], "else")) {
      else_b = then_e + 1;
      else_e = stmt_end(t, else_b);
    }
    RankBranchSummary rb;
    rb.line = t[i].line;
    rb.col = t[i].col;
    rb.exit_then = has_function_exit(t, then_b, then_e);
    rb.exit_else = else_b != else_e && has_function_exit(t, else_b, else_e);
    rb.then_colls = collectives_in(t, then_b, then_e);
    rb.else_colls = collectives_in(t, else_b, else_e);
    rb.after_colls = collectives_in(t, std::max(then_e, else_e), fe.close);
    rb.then_calls = call_names_in(t, then_b, then_e);
    rb.else_calls = call_names_in(t, else_b, else_e);
    rb.after_calls = call_names_in(t, std::max(then_e, else_e), fe.close);
    out.push_back(std::move(rb));
  }
}

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    out.push_back(s[i] == 't' ? '\t' : s[i] == 'n' ? '\n' : s[i]);
  }
  return out;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == sep) {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string join_list(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) out += (i ? "," : "") + v[i];
  return out;
}

std::vector<std::string> split_list(const std::string& s) {
  if (s.empty()) return {};
  return split(s, ',');
}

bool parse_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64_hex(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end == s.c_str() + s.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

SuppressionSummary collect_suppressions(const LexedFile& file, const std::string& rel_path,
                                        std::vector<Finding>* bad_annotations) {
  SuppressionSummary sup;
  for (const Comment& c : file.comments) {
    const std::size_t marker = c.text.find("hcs-lint:");
    if (marker == std::string::npos) continue;
    const std::string body = c.text.substr(marker + 9);
    struct Form {
      const char* name;
      int line_offset;  // -1 = whole file
    };
    static constexpr Form kForms[] = {
        {"allow-next-line(", 1}, {"allow-file(", -1}, {"allow(", 0}};
    bool matched = false;
    for (const Form& form : kForms) {
      const std::size_t at = body.find(form.name);
      if (at == std::string::npos) continue;
      matched = true;
      const std::size_t open = at + std::string(form.name).size() - 1;
      for (const std::string& rule : parse_rule_list(body, open)) {
        if (!find_rule(rule)) {
          if (bad_annotations) {
            bad_annotations->push_back(
                Finding{"bad-suppression", Severity::kError, rel_path, c.line, 1,
                        "suppression names unknown rule '" + rule +
                            "' — see tools/hcs_lint --list-rules"});
          }
          continue;
        }
        if (form.line_offset < 0) {
          sup.whole_file.insert(rule);
        } else {
          sup.by_line[c.end_line + form.line_offset].insert(rule);
        }
      }
      break;
    }
    if (!matched && bad_annotations) {
      bad_annotations->push_back(
          Finding{"bad-suppression", Severity::kError, rel_path, c.line, 1,
                  "unrecognized hcs-lint comment — expected allow(...), "
                  "allow-next-line(...) or allow-file(...)"});
    }
  }
  return sup;
}

bool is_suppressed(const SuppressionSummary& sup, const Finding& f) {
  if (sup.whole_file.count(f.rule)) return true;
  const auto it = sup.by_line.find(f.line);
  return it != sup.by_line.end() && it->second.count(f.rule);
}

FileSummary build_summary(const LexedFile& file, const std::string& rel_path,
                          const std::function<double()>& now,
                          std::map<std::string, double>* rule_seconds) {
  FileSummary out;
  out.rel_path = rel_path;

  // Per-file findings for every rule: selection and suppression are config,
  // applied at assembly time so cached summaries stay config-independent.
  run_rules(file, rel_path, /*enabled=*/{}, out.local_findings, now, rule_seconds);
  std::vector<Finding> bad;
  out.suppressions = collect_suppressions(file, rel_path, &bad);
  out.local_findings.insert(out.local_findings.end(), bad.begin(), bad.end());
  std::sort(out.local_findings.begin(), out.local_findings.end());

  const Toks& t = file.tokens;
  const std::vector<FuncExtent> extents = function_extents(t);
  const std::set<std::string> rank_vars = rank_tainted_vars(t);
  for (const NamedFn& fn : named_functions(t, extents)) {
    FunctionSummary fs;
    fs.name = fn.name;
    fs.qualifier = fn.qualifier;
    fs.line = fn.line;
    fs.returns_sync_result = fn.returns_sync_result;
    std::set<std::string> colls;
    for (std::size_t i = fn.fe.open + 1; i < fn.fe.close; ++i) {
      if (!is_ident(t[i])) continue;
      const CallKind kind = call_kind(t, i);
      if (kind == CallKind::kNone) continue;
      if (is_collective_call(t, i)) {
        colls.insert(t[i].text);
        continue;
      }
      if (ignored_callees().count(t[i].text)) continue;
      CallSite cs;
      cs.name = t[i].text;
      cs.method = kind == CallKind::kMethod;
      cs.line = t[i].line;
      cs.col = t[i].col;
      cs.use = classify_use(t, i, fn.fe);
      fs.calls.push_back(std::move(cs));
    }
    fs.direct_colls.assign(colls.begin(), colls.end());
    scan_hazards(t, fn.fe, fs.hazards);
    scan_rank_branches(t, fn.fe, rank_vars, fs.rank_branches);
    out.functions.push_back(std::move(fs));
  }
  return out;
}

std::string serialize_summary(const FileSummary& s) {
  std::ostringstream os;
  os << "hcs-lint-summary " << kSummaryFormatVersion << "\n";
  os << "path\t" << s.rel_path << "\n";
  os << "hash\t" << std::hex << s.source_hash << std::dec << "\n";
  if (!s.suppressions.whole_file.empty()) {
    os << "sup-file\t"
       << join_list({s.suppressions.whole_file.begin(), s.suppressions.whole_file.end()}) << "\n";
  }
  for (const auto& [line, rules] : s.suppressions.by_line) {
    os << "sup-line\t" << line << "\t" << join_list({rules.begin(), rules.end()}) << "\n";
  }
  for (const Finding& f : s.local_findings) {
    os << "finding\t" << f.rule << "\t" << static_cast<int>(f.severity) << "\t" << f.line << "\t"
       << f.col << "\t" << escape(f.message) << "\n";
  }
  for (const FunctionSummary& fn : s.functions) {
    os << "func\t" << fn.name << "\t" << fn.qualifier << "\t" << fn.line << "\t"
       << (fn.returns_sync_result ? 1 : 0) << "\n";
    for (const std::string& c : fn.direct_colls) os << "coll\t" << c << "\n";
    for (const CallSite& c : fn.calls) {
      os << "call\t" << c.name << "\t" << (c.method ? 1 : 0) << "\t" << c.line << "\t" << c.col
         << "\t" << static_cast<int>(c.use) << "\n";
    }
    for (const HazardSite& h : fn.hazards) {
      os << "hazard\t" << static_cast<int>(h.kind) << "\t" << h.line << "\t" << h.col << "\t"
         << h.detail << "\n";
    }
    for (const RankBranchSummary& rb : fn.rank_branches) {
      os << "branch\t" << rb.line << "\t" << rb.col << "\t" << (rb.exit_then ? 1 : 0) << "\t"
         << (rb.exit_else ? 1 : 0) << "\t" << join_list(rb.then_colls) << "\t"
         << join_list(rb.else_colls) << "\t" << join_list(rb.after_colls) << "\t"
         << join_list(rb.then_calls) << "\t" << join_list(rb.else_calls) << "\t"
         << join_list(rb.after_calls) << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

bool parse_summary(const std::string& text, FileSummary* out) {
  *out = FileSummary{};
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) ||
      line != "hcs-lint-summary " + std::to_string(kSummaryFormatVersion)) {
    return false;
  }
  FunctionSummary* fn = nullptr;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::vector<std::string> f = split(line, '\t');
    const std::string& tag = f[0];
    if (tag == "path" && f.size() == 2) {
      out->rel_path = f[1];
    } else if (tag == "hash" && f.size() == 2) {
      if (!parse_u64_hex(f[1], &out->source_hash)) return false;
    } else if (tag == "sup-file" && f.size() == 2) {
      for (const std::string& r : split_list(f[1])) out->suppressions.whole_file.insert(r);
    } else if (tag == "sup-line" && f.size() == 3) {
      int ln = 0;
      if (!parse_int(f[1], &ln)) return false;
      for (const std::string& r : split_list(f[2])) out->suppressions.by_line[ln].insert(r);
    } else if (tag == "finding" && f.size() == 6) {
      Finding fd;
      fd.rule = f[1];
      int sev = 0;
      if (!parse_int(f[2], &sev) || !parse_int(f[3], &fd.line) || !parse_int(f[4], &fd.col)) {
        return false;
      }
      fd.severity = sev ? Severity::kError : Severity::kWarning;
      fd.path = out->rel_path;
      fd.message = unescape(f[5]);
      out->local_findings.push_back(std::move(fd));
    } else if (tag == "func" && f.size() == 5) {
      FunctionSummary fs;
      fs.name = f[1];
      fs.qualifier = f[2];
      int rsr = 0;
      if (!parse_int(f[3], &fs.line) || !parse_int(f[4], &rsr)) return false;
      fs.returns_sync_result = rsr != 0;
      out->functions.push_back(std::move(fs));
      fn = &out->functions.back();
    } else if (tag == "coll" && f.size() == 2 && fn) {
      fn->direct_colls.push_back(f[1]);
    } else if (tag == "call" && f.size() == 6 && fn) {
      CallSite cs;
      cs.name = f[1];
      int method = 0, use = 0;
      if (!parse_int(f[2], &method) || !parse_int(f[3], &cs.line) || !parse_int(f[4], &cs.col) ||
          !parse_int(f[5], &use) || use < 0 || use > 3) {
        return false;
      }
      cs.method = method != 0;
      cs.use = static_cast<ResultUse>(use);
      fn->calls.push_back(std::move(cs));
    } else if (tag == "hazard" && f.size() == 5 && fn) {
      HazardSite h;
      int kind = 0;
      if (!parse_int(f[1], &kind) || kind < 0 || kind > 2 || !parse_int(f[2], &h.line) ||
          !parse_int(f[3], &h.col)) {
        return false;
      }
      h.kind = static_cast<HazardKind>(kind);
      h.detail = f[4];
      fn->hazards.push_back(std::move(h));
    } else if (tag == "branch" && f.size() == 11 && fn) {
      RankBranchSummary rb;
      int et = 0, ee = 0;
      if (!parse_int(f[1], &rb.line) || !parse_int(f[2], &rb.col) || !parse_int(f[3], &et) ||
          !parse_int(f[4], &ee)) {
        return false;
      }
      rb.exit_then = et != 0;
      rb.exit_else = ee != 0;
      rb.then_colls = split_list(f[5]);
      rb.else_colls = split_list(f[6]);
      rb.after_colls = split_list(f[7]);
      rb.then_calls = split_list(f[8]);
      rb.else_calls = split_list(f[9]);
      rb.after_calls = split_list(f[10]);
      fn->rank_branches.push_back(std::move(rb));
    } else {
      return false;
    }
  }
  return saw_end;
}

}  // namespace hcs::lint
