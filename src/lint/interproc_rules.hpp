// Interprocedural hcs-lint rules (phase 2 of 2).
//
// These run over the merged per-file summaries and the ProjectIndex, not over
// tokens: they see only what phase 1 recorded.  Each rule extends one per-file
// rule across call edges (up to `max_call_depth` edges, the PARCOACH-style
// bound on chain length):
//
//   ip-coll-rank-branch      rank-dependent branches whose *direct* collective
//                            calls match but whose transitive collective bags
//                            (through helper calls) diverge, and rank-dependent
//                            early exits that skip collectives hidden in
//                            helpers.
//   ip-wall-clock            call chains from non-exempt code into wall-clock
//                            reads the per-file rule did not report (sites in
//                            exempt files or under a suppression comment) —
//                            the "laundered through a utility" case.
//   ip-raw-random            the same reachability for raw-randomness sources.
//   ip-shard-shared-state    call chains from non-exempt code into helpers
//                            that re-point the shard context or read
//                            World::sim().
//   ip-unchecked-sync-result call sites of SyncResult-returning functions that
//                            drop the SyncReport health (discarded value,
//                            implicit ClockPtr narrowing, or a binding whose
//                            .report is never consulted).
//
// Path exemptions from rule_table() are applied here; suppression comments
// are applied by the analyzer (it owns the per-file suppression tables).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/finding.hpp"
#include "lint/summary.hpp"

namespace hcs::lint {

std::vector<Finding> run_interproc_rules(const std::vector<FileSummary>& files,
                                         const ProjectIndex& index,
                                         const std::set<std::string>& enabled,
                                         std::size_t max_call_depth,
                                         const std::function<double()>& now = {},
                                         std::map<std::string, double>* rule_seconds = nullptr);

}  // namespace hcs::lint
