// hcs-lint driver: file discovery, suppression comments, baseline filtering.
//
// Suppression comment forms, each naming one or more rule ids (the examples
// use real ids so this header lints clean against its own parser):
//   hcs-lint: allow(wall-clock, raw-random)   — suppresses on the comment's line
//   hcs-lint: allow-next-line(co-await-subexpr) — suppresses on the next line
//   hcs-lint: allow-file(task-discard)          — suppresses in the whole file
// A justification after the closing paren is encouraged and ignored by the
// tool.  Unknown rule names in a suppression are themselves reported (a typo
// would otherwise silently disable nothing).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/finding.hpp"

namespace hcs::lint {

struct AnalyzerOptions {
  std::set<std::string> enabled_rules;  // empty = all
  std::string root;                     // paths are reported relative to this
};

struct AnalysisResult {
  std::vector<Finding> findings;  // sorted; suppressions already applied
  // Raw source lines per relative path, for baseline keying/serialization.
  std::map<std::string, std::vector<std::string>> lines;
};

// Lints one in-memory source (unit-testable without touching the
// filesystem).  `rel_path` is the path used in findings and exemptions.
std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& source,
                                    const AnalyzerOptions& options);

// Lints every C++ file under `paths` (files or directories, resolved against
// options.root when relative).  Paths under tests/lint/fixtures are skipped:
// the bad fixtures fail by design.  Throws std::runtime_error on I/O errors.
AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options);

// Drops baselined findings (consuming credits) and returns the remainder.
std::vector<Finding> apply_baseline(const AnalysisResult& result, Baseline baseline);

}  // namespace hcs::lint
