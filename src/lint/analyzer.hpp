// hcs-lint driver: file discovery, the two-phase whole-program pipeline,
// incremental cache, suppression and baseline filtering.
//
// Pipeline: every file is lexed and reduced to a FileSummary (phase 1, see
// summary.hpp) — or the summary is loaded from the content-hash cache when
// `cache_dir` is set and the file is unchanged.  The summaries are then
// merged into a ProjectIndex and the interprocedural rules run over the call
// graph (phase 2, see interproc_rules.hpp).  Rule selection, suppression
// comments and baselines are applied at assembly time so cached summaries
// stay configuration-independent.
//
// Suppression comment forms, each naming one or more rule ids (the examples
// use real ids so this header lints clean against its own parser):
//   hcs-lint: allow(wall-clock, raw-random)   — suppresses on the comment's line
//   hcs-lint: allow-next-line(co-await-subexpr) — suppresses on the next line
//   hcs-lint: allow-file(task-discard)          — suppresses in the whole file
// A justification after the closing paren is encouraged and ignored by the
// tool.  Unknown rule names in a suppression are themselves reported (a typo
// would otherwise silently disable nothing).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/finding.hpp"

namespace hcs::lint {

struct AnalyzerOptions {
  std::set<std::string> enabled_rules;  // empty = all
  std::string root;                     // paths are reported relative to this
  std::string cache_dir;                // empty = no incremental summary cache
  std::size_t max_call_depth = 4;       // interprocedural chain bound, in call edges
  // Host-time source (seconds) for stats.  Left empty, no timings are taken —
  // the library itself never reads a wall clock (it must lint clean under its
  // own wall-clock rule); tools/hcs_lint injects one.
  std::function<double()> now;
};

struct RuleStats {
  int findings = 0;
  double seconds = 0.0;
};

struct AnalysisStats {
  int files = 0;
  int files_lexed = 0;  // cache misses: lexed + summarized this run
  int cache_hits = 0;
  double summary_seconds = 0.0;    // read + hash + lex/summarize (or cache load)
  double interproc_seconds = 0.0;  // index build + interprocedural rules
  double total_seconds = 0.0;
  std::map<std::string, RuleStats> rules;  // per rule id, post-suppression
};

struct AnalysisResult {
  std::vector<Finding> findings;  // sorted; suppressions already applied
  // Raw source lines per relative path, for baseline keying/serialization.
  std::map<std::string, std::vector<std::string>> lines;
  AnalysisStats stats;
};

// Lints one in-memory source with the per-file rules only (unit-testable
// without touching the filesystem).  `rel_path` is the path used in findings
// and exemptions.  Interprocedural rules need the project phase: use
// analyze_sources.
std::vector<Finding> analyze_source(const std::string& rel_path, const std::string& source,
                                    const AnalyzerOptions& options);

// Full two-phase analysis over in-memory (rel_path, content) pairs — the
// multi-file fixture sets and the cache tests drive this.  Honors
// options.cache_dir.
AnalysisResult analyze_sources(const std::vector<std::pair<std::string, std::string>>& sources,
                               const AnalyzerOptions& options);

// Full two-phase analysis over every C++ file under `paths` (files or
// directories, resolved against options.root when relative).  Paths under
// tests/lint/fixtures are skipped: the bad fixtures fail by design.  Throws
// std::runtime_error on I/O errors (missing path, unreadable file, empty
// directory tree).
AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalyzerOptions& options);

// Drops baselined findings (consuming credits) and returns the remainder.
std::vector<Finding> apply_baseline(const AnalysisResult& result, Baseline baseline);

}  // namespace hcs::lint
