#include "lint/baseline.hpp"

#include <cctype>
#include <sstream>

#include "lint/rules.hpp"

namespace hcs::lint {

std::string Baseline::normalize_line(const std::string& line) {
  std::string out;
  bool in_ws = true;  // also trims leading whitespace
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string Baseline::key(const Finding& f, const std::vector<std::string>& file_lines) {
  const std::size_t idx = static_cast<std::size_t>(f.line) - 1;
  const std::string line = idx < file_lines.size() ? normalize_line(file_lines[idx]) : "";
  return f.rule + "\t" + f.path + "\t" + line;
}

bool Baseline::parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    const std::size_t t3 = t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      if (error) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": expected 4 tab-separated fields (count, rule, path, source line)";
      }
      return false;
    }
    int count = 0;
    try {
      count = std::stoi(line.substr(0, t1));
    } catch (...) {
      count = -1;
    }
    if (count <= 0) {
      if (error) {
        *error = "baseline line " + std::to_string(lineno) + ": bad count '" +
                 line.substr(0, t1) + "'";
      }
      return false;
    }
    const std::string k = line.substr(t1 + 1);  // rule \t path \t normalized line
    const std::string rule = line.substr(t1 + 1, t2 - t1 - 1);
    if (!find_rule(rule) && rule != "bad-suppression") {
      unknown_rule_warnings_.push_back("baseline line " + std::to_string(lineno) +
                                       ": rule '" + rule +
                                       "' no longer exists — entry is inert, consider "
                                       "regenerating the baseline");
      continue;  // no credits: findings can never match a retired rule id
    }
    credits_[k] += count;
  }
  return true;
}

bool Baseline::consume(const Finding& f, const std::vector<std::string>& file_lines) {
  const auto it = credits_.find(key(f, file_lines));
  if (it == credits_.end() || it->second <= 0) return false;
  --it->second;
  return true;
}

std::string Baseline::serialize(const std::vector<Finding>& findings,
                                const std::map<std::string, std::vector<std::string>>& lines) {
  std::map<std::string, int> counts;
  for (const Finding& f : findings) {
    const auto it = lines.find(f.path);
    static const std::vector<std::string> kNone;
    counts[key(f, it == lines.end() ? kNone : it->second)] += 1;
  }
  std::ostringstream out;
  out << "# hcs-lint baseline: known findings that do not fail the build.\n"
      << "# Format: <count>\\t<rule>\\t<path>\\t<normalized source line>.\n"
      << "# Regenerate with: tools/hcs_lint --write-baseline <this file> <paths>\n";
  for (const auto& [k, n] : counts) out << n << "\t" << k << "\n";
  return out.str();
}

}  // namespace hcs::lint
