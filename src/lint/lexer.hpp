// Lightweight C++ lexer for hcs-lint.
//
// This is not a compiler front end: it produces a flat token stream that is
// exact about the things static checks trip over — comments, string/char
// literals (including raw strings), preprocessor directives and multi-char
// operators — and deliberately ignores everything a real parser would need
// (no preprocessing, no templates, no name lookup).  The rules in rules.cpp
// work on this stream with brace/paren-aware scanning.
#pragma once

#include <string>
#include <vector>

namespace hcs::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords (rules match on text)
  kNumber,  // any numeric literal, suffixes included
  kString,  // string literal (escaped or raw), text excludes quotes
  kChar,    // character literal
  kPunct,   // operator or punctuator, longest-munch (e.g. "&&", "->", "::")
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

struct Comment {
  std::string text;  // without the // or /* */ markers, trimmed
  int line = 0;      // first line of the comment
  int end_line = 0;  // last line (== line for // comments)
};

// A lexed translation unit.  `tokens` excludes comments and preprocessor
// directives; both are kept separately (comments carry the suppression
// annotations, raw `lines` feed the baseline fingerprint).
struct LexedFile {
  std::string path;
  std::vector<std::string> lines;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

LexedFile lex(std::string path, const std::string& source);

}  // namespace hcs::lint
