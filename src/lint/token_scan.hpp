// Shared token-stream scanning helpers for hcs-lint.
//
// Both the per-file rules (rules.cpp) and the whole-program summary extractor
// (summary.cpp) work on the same flat token stream, with the same
// brace/paren-aware heuristics: matching brackets, statement extents,
// call-site classification, function-body discovery, rank-taint data flow and
// the collective-call tables.  This header is the single home for those
// primitives so the two phases cannot drift apart.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace hcs::lint::scan {

using Toks = std::vector<Token>;

bool is(const Token& t, const char* text);
bool is_ident(const Token& t);
bool is_ident(const Token& t, const char* text);
bool opens(const Token& t);
bool closes(const Token& t);
bool is_assign_op(const Token& t);
bool is_exit_kw(const Token& t);

// Matching close bracket for the open bracket at `i`; n (= one past the last
// token) when unbalanced.  match_backward is the mirror image.
std::size_t match_forward(const Toks& t, std::size_t i);
std::size_t match_backward(const Toks& t, std::size_t i);

// One past the end of the statement starting at `b`.  Handles compound
// statements and control-flow headers so a caller can treat "the then
// branch" as one span whether or not it is braced.
std::size_t stmt_end(const Toks& t, std::size_t b);

enum class CallKind { kNone, kMethod, kFree };

// Classifies the identifier at `i` (which must be followed by "(") as a
// method call, a free/qualified call, or not a call (declarations and
// definitions: the name is preceded by a type).
CallKind call_kind(const Toks& t, std::size_t i);

struct FuncExtent {
  std::size_t open = 0;   // index of the body "{"
  std::size_t close = 0;  // index of the matching "}"
  bool lambda = false;
  bool coroutine = false;  // contains co_await/co_return/co_yield directly
};

// Finds every function (and lambda) body.  Heuristic: a "{" qualifies when
// walking back over declaration-ish tokens reaches a ")" whose matching "("
// is not a control-flow header.
std::vector<FuncExtent> function_extents(const Toks& t);
const FuncExtent* enclosing_function(const std::vector<FuncExtent>& fns, std::size_t i);

// True when `[` at `i` starts a lambda introducer (not a subscript or
// attribute).
bool lambda_start(const Toks& t, std::size_t i);

// Data-flow-lite rank taint: identifiers assigned from a top-level rank()
// call (or from an already-tainted identifier at top level) are themselves
// rank-derived.
std::set<std::string> rank_tainted_vars(const Toks& t);

// True when the condition span [b, e) tests rank identity.  Identifiers that
// only feed status-style calls (peer_status(other_rank), ...) do not count.
bool rank_dependent_cond(const Toks& t, const std::set<std::string>& rank_vars, std::size_t b,
                         std::size_t e);

// The collective-call tables shared by coll-rank-branch and the
// whole-program summary.
const std::set<std::string>& free_collectives();
const std::set<std::string>& method_collectives();
bool is_collective_call(const Toks& t, std::size_t i);

// Sorted names of the collectives called in [b, e).
std::vector<std::string> collectives_in(const Toks& t, std::size_t b, std::size_t e);

// Early exits that skip the rest of the *function* within [b, e).
bool has_function_exit(const Toks& t, std::size_t b, std::size_t e);

std::string join(const std::vector<std::string>& v);
std::string lower(std::string s);

}  // namespace hcs::lint::scan
