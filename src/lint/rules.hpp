// The hcs-lint rule catalogue and rule engine.
//
// Rules are table-driven: rule_table() is the single source of truth for rule
// ids, default severities, categories and per-rule path exemptions.  Every
// rule is a token-stream check over a LexedFile (see docs/static-analysis.md
// for the catalogue with rationale and examples).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/lexer.hpp"

namespace hcs::lint {

struct RuleInfo {
  std::string id;
  Severity severity = Severity::kError;
  std::string category;  // collective-matching | determinism | coroutine-lifetime | performance
  std::string summary;
  // Repo-relative path prefixes (forward slashes) where the rule is off by
  // design, e.g. the runner's wall-clock timing shim.
  std::vector<std::string> exempt_path_prefixes = {};
  // When non-empty, the rule only runs on paths under these prefixes (plus
  // the lint fixtures dir, so the rule's own fixture pair exercises it).
  std::vector<std::string> limit_path_prefixes = {};
  // Interprocedural rules run in the whole-program phase (interproc_rules.cpp)
  // over merged per-file summaries instead of in run_rules; their fixtures are
  // multi-file sets under tests/lint/fixtures/ip/<id>/{bad,good}/.
  bool interprocedural = false;
};

const std::vector<RuleInfo>& rule_table();
const RuleInfo* find_rule(const std::string& id);

// Runs every per-file rule whose id is in `enabled` (empty set = all rules)
// over `file` and appends raw findings.  `rel_path` is the repo-relative path
// used for exemption matching and reporting; suppression comments and
// baselines are applied by the analyzer, not here.  Interprocedural rules are
// skipped (see interproc_rules.hpp).  `now`/`rule_seconds` (optional)
// accumulate per-rule runtimes for --stats.
void run_rules(const LexedFile& file, const std::string& rel_path,
               const std::set<std::string>& enabled, std::vector<Finding>& out,
               const std::function<double()>& now = {},
               std::map<std::string, double>* rule_seconds = nullptr);

}  // namespace hcs::lint
