#include "lint/lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>
#include <utility>

namespace hcs::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-char punctuators, longest first within each first-char group.
constexpr std::array<std::string_view, 22> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
};

std::string trim(std::string s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& src) : src_(src) {
    out_.path = std::move(path);
    split_lines();
  }

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance(1);
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        advance(1);  // line continuation outside a directive: just glue
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier_or_raw_string();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    out_.tokens.push_back(Token{TokKind::kEof, "", line_, col_});
    return std::move(out_);
  }

 private:
  void split_lines() {
    std::string cur;
    for (char c : src_) {
      if (c == '\n') {
        out_.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out_.lines.push_back(cur);
  }

  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // Advances over `n` chars that are known to contain no newline.
  void advance(std::size_t n) {
    pos_ += n;
    col_ += static_cast<int>(n);
  }

  void advance_tracking(std::size_t n) {  // may cross newlines
    for (std::size_t i = 0; i < n && pos_ < src_.size(); ++i) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void emit(TokKind kind, std::string text, int line, int col) {
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  void line_comment() {
    const int start_line = line_;
    // Phase-2 line splicing happens before comment recognition, so a
    // backslash (optionally followed by a \r) at the end of the line extends
    // the comment onto the next physical line.
    std::size_t end = pos_;
    while (true) {
      end = src_.find('\n', end);
      if (end == std::string::npos) {
        end = src_.size();
        break;
      }
      std::size_t b = end;
      if (b > pos_ && src_[b - 1] == '\r') --b;
      if (b > pos_ && src_[b - 1] == '\\') {
        ++end;  // spliced: keep scanning on the next line
        continue;
      }
      break;
    }
    std::string body = trim(src_.substr(pos_ + 2, end - pos_ - 2));
    advance_tracking(end - pos_);
    out_.comments.push_back(Comment{std::move(body), start_line, line_});
  }

  void block_comment() {
    const int start_line = line_;
    std::size_t end = src_.find("*/", pos_ + 2);
    const std::size_t stop = end == std::string::npos ? src_.size() : end + 2;
    const std::size_t body_end = end == std::string::npos ? src_.size() : end;
    std::string body = trim(src_.substr(pos_ + 2, body_end - pos_ - 2));
    advance_tracking(stop - pos_);
    out_.comments.push_back(Comment{std::move(body), start_line, line_});
  }

  // Preprocessor directive: consumed wholesale (honouring \-continuations);
  // the token stream never sees it.  Comments inside are still recorded.
  void directive() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') break;
      if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
        advance_tracking(peek(1) == '\r' ? 3 : 2);
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        out_.tokens.pop_back();  // directive content stays out of the stream
        continue;
      }
      advance(1);
    }
    at_line_start_ = true;  // next line may be another directive
  }

  void identifier_or_raw_string() {
    const int l = line_, c = col_;
    std::size_t end = pos_;
    while (end < src_.size() && ident_char(src_[end])) ++end;
    std::string text = src_.substr(pos_, end - pos_);
    // Raw-string prefix: R"..., u8R"..., LR"..., etc.
    if (end < src_.size() && src_[end] == '"' && !text.empty() && text.back() == 'R' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
      advance(end - pos_);
      raw_string(l, c);
      return;
    }
    advance(end - pos_);
    emit(TokKind::kIdent, std::move(text), l, c);
  }

  void raw_string(int l, int c) {
    // At a '"' following an R prefix: R"delim( ... )delim"
    std::size_t p = pos_ + 1;
    std::string delim;
    while (p < src_.size() && src_[p] != '(') delim.push_back(src_[p++]);
    if (p >= src_.size()) {
      // Unterminated at EOF with no '(' — emit what's there instead of
      // reading past the buffer.
      std::string body = src_.substr(pos_ + 1);
      advance_tracking(src_.size() - pos_);
      emit(TokKind::kString, std::move(body), l, c);
      return;
    }
    const std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, p);
    if (end == std::string::npos) end = src_.size();
    const std::size_t body_begin = p + 1;
    std::string body = src_.substr(body_begin, end - body_begin);
    const std::size_t stop = end == src_.size() ? end : end + closer.size();
    advance_tracking(stop - pos_);
    emit(TokKind::kString, std::move(body), l, c);
  }

  void string_literal() {
    const int l = line_, c = col_;
    std::size_t p = pos_ + 1;
    std::string body;
    while (p < src_.size() && src_[p] != '"') {
      if (src_[p] == '\\' && p + 1 < src_.size()) {
        body.push_back(src_[p]);
        body.push_back(src_[p + 1]);
        p += 2;
        continue;
      }
      if (src_[p] == '\n') break;  // unterminated: stop at EOL
      body.push_back(src_[p++]);
    }
    const std::size_t stop = p < src_.size() && src_[p] == '"' ? p + 1 : p;
    advance_tracking(stop - pos_);
    emit(TokKind::kString, std::move(body), l, c);
  }

  void char_literal() {
    const int l = line_, c = col_;
    std::size_t p = pos_ + 1;
    std::string body;
    while (p < src_.size() && src_[p] != '\'') {
      if (src_[p] == '\\' && p + 1 < src_.size()) {
        body.push_back(src_[p]);
        body.push_back(src_[p + 1]);
        p += 2;
        continue;
      }
      if (src_[p] == '\n') break;
      body.push_back(src_[p++]);
    }
    const std::size_t stop = p < src_.size() && src_[p] == '\'' ? p + 1 : p;
    advance_tracking(stop - pos_);
    emit(TokKind::kChar, std::move(body), l, c);
  }

  void number() {
    const int l = line_, c = col_;
    std::size_t end = pos_;
    while (end < src_.size()) {
      const char ch = src_[end];
      if (ident_char(ch) || ch == '.' || ch == '\'') {
        ++end;
        continue;
      }
      if ((ch == '+' || ch == '-') && end > pos_) {
        const char prev = src_[end - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++end;
          continue;
        }
      }
      break;
    }
    std::string text = src_.substr(pos_, end - pos_);
    advance(end - pos_);
    emit(TokKind::kNumber, std::move(text), l, c);
  }

  void punct() {
    const int l = line_, c = col_;
    const std::string_view rest(src_.data() + pos_, src_.size() - pos_);
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        advance(p.size());
        emit(TokKind::kPunct, std::string(p), l, c);
        return;
      }
    }
    advance(1);
    emit(TokKind::kPunct, std::string(1, rest[0]), l, c);
  }

  const std::string& src_;
  LexedFile out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile lex(std::string path, const std::string& source) {
  return Lexer(std::move(path), source).run();
}

}  // namespace hcs::lint
