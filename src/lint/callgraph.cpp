#include "lint/callgraph.hpp"

namespace hcs::lint {

ProjectIndex ProjectIndex::build(const std::vector<FileSummary>& files) {
  ProjectIndex idx;
  for (const FileSummary& file : files) {
    for (const FunctionSummary& fn : file.functions) {
      idx.by_name_[fn.name].push_back(FuncRef{&file, &fn});
    }
  }
  return idx;
}

const FuncRef* ProjectIndex::resolve(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.size() != 1) return nullptr;
  return &it->second.front();
}

const std::vector<FuncRef>& ProjectIndex::candidates(const std::string& name) const {
  static const std::vector<FuncRef> kNone;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNone : it->second;
}

bool ProjectIndex::all_return_sync_result(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.empty()) return false;
  for (const FuncRef& ref : it->second) {
    if (!ref.fn->returns_sync_result) return false;
  }
  return true;
}

std::string describe(const FuncRef& ref) {
  return ref.fn->name + " (" + ref.file->rel_path + ":" + std::to_string(ref.fn->line) + ")";
}

}  // namespace hcs::lint
