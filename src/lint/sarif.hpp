// Minimal SARIF 2.1.0 serialization of hcs-lint findings, for CI upload and
// inline PR annotations.  One run, one driver ("hcs-lint"), the full rule
// catalogue under tool.driver.rules, one result per finding with a single
// physical location.
#pragma once

#include <string>
#include <vector>

#include "lint/finding.hpp"

namespace hcs::lint {

std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace hcs::lint
