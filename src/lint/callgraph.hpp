// Project-wide symbol index over per-file summaries (phase 2 of 2).
//
// Resolution is precision-first: a call site resolves to a definition only
// when exactly one function in the whole project has that base name, so an
// ambiguous name ("run", "size") contributes no call edge rather than a wrong
// one.  Virtual dispatch over a family of same-named overrides is handled by
// the weaker all_agree query: a property holds for a call when every
// candidate definition has it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/summary.hpp"

namespace hcs::lint {

struct FuncRef {
  const FileSummary* file = nullptr;
  const FunctionSummary* fn = nullptr;
};

class ProjectIndex {
 public:
  // Builds the name index.  `files` must outlive the index and must not
  // reallocate (the index stores pointers into it).
  static ProjectIndex build(const std::vector<FileSummary>& files);

  // The unique definition with this base name, or nullptr when the name is
  // undefined or ambiguous.
  const FuncRef* resolve(const std::string& name) const;

  // All definitions sharing the base name (empty when undefined).
  const std::vector<FuncRef>& candidates(const std::string& name) const;

  // True when the name has at least one definition and every one of them
  // returns SyncResult — the query that survives virtual sync_clocks
  // overrides.
  bool all_return_sync_result(const std::string& name) const;

 private:
  std::map<std::string, std::vector<FuncRef>> by_name_;
};

// "name (path:line)" for chain messages.
std::string describe(const FuncRef& ref);

}  // namespace hcs::lint
