#include "runner/trial_runner.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "replay/record.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace hcs::runner {

int resolve_jobs(int jobs) noexcept {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

// Per-trial observability sinks, created lazily only when the launching
// thread had sinks installed.  Kept until all trials finish, then folded
// into the parent in trial-index order.
struct TrialSinks {
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::MetricsRegistry> metrics;
  std::unique_ptr<replay::Recorder> recorder;
};

}  // namespace

void TrialRunner::run_indexed(int ntrials, std::uint64_t base_seed,
                              const std::function<void(const Trial&)>& body) {
  if (ntrials <= 0) return;
  const auto n = static_cast<std::size_t>(ntrials);

  // Sinks of the launching thread; trials get private ones mirroring these.
  trace::Tracer* const parent_tracer = trace::active_tracer();
  trace::MetricsRegistry* const parent_metrics = trace::active_metrics();
  replay::Recorder* const parent_recorder = replay::active_recorder();

  std::vector<TrialSinks> sinks(n);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<int> next{0};
  std::atomic<bool> poisoned{false};

  const auto worker = [&]() noexcept {
    for (;;) {
      if (poisoned.load(std::memory_order_relaxed)) return;
      const int index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= ntrials) return;
      TrialSinks& sink = sinks[static_cast<std::size_t>(index)];
      try {
        if (parent_tracer != nullptr) {
          sink.tracer = std::make_unique<trace::Tracer>(parent_tracer->ring_capacity());
        }
        if (parent_metrics != nullptr) sink.metrics = std::make_unique<trace::MetricsRegistry>();
        if (parent_recorder != nullptr) sink.recorder = std::make_unique<replay::Recorder>();
        // Scoped install on *this* worker thread (the slots are thread_local);
        // restored before the next trial regardless of how the body exits.
        const trace::ScopedTracer install_tracer(sink.tracer.get());
        const trace::ScopedMetrics install_metrics(sink.metrics.get());
        const replay::ScopedRecorder install_recorder(sink.recorder.get());
        body(Trial{index, base_seed + static_cast<std::uint64_t>(index)});
      } catch (...) {
        errors[static_cast<std::size_t>(index)] = std::current_exception();
        poisoned.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int nworkers = jobs_ < ntrials ? jobs_ : ntrials;
  if (nworkers <= 1) {
    // Same code path as the parallel case (private sinks, merge below), so
    // J=1 output is byte-identical to any J by construction.
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // Fold per-trial observability into the parent in trial-index order: the
  // merged stream is what a sequential run would have recorded.
  for (TrialSinks& sink : sinks) {
    if (parent_metrics != nullptr && sink.metrics) parent_metrics->merge_from(*sink.metrics);
    if (parent_tracer != nullptr && sink.tracer) parent_tracer->absorb(*sink.tracer);
    if (parent_recorder != nullptr && sink.recorder) parent_recorder->absorb(*sink.recorder);
  }

  // Rethrow the lowest-index error — the one a sequential run hits first.
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace hcs::runner
