// Parallel trial execution with sequential semantics.
//
// The paper's point clouds (Figs. 3-9) are built from many *independent*
// mpiruns: every trial owns its World, Simulation and RNG seed, so nothing
// but the final tables couples them.  TrialRunner exploits that: it fans N
// trials across J worker threads and guarantees the observable output is
// byte-identical for any J, including J=1.
//
// How determinism survives parallelism:
//   * Trials are claimed from a shared atomic counter (no work stealing, no
//     re-ordering of claims); which worker runs a trial never influences the
//     trial, because each trial's inputs are only (index, seed).
//   * Results land in a vector slot keyed by trial index, so callers iterate
//     them in trial order no matter the completion order.
//   * Observability is thread-scoped (trace::active_tracer/active_metrics
//     are thread_local).  If the launching thread has sinks installed, each
//     trial runs with a *private* Tracer/MetricsRegistry installed on its
//     worker, and the runner folds those into the parent sinks in
//     trial-index order afterwards (Tracer::absorb /
//     MetricsRegistry::merge_from) — exactly the stream a sequential run
//     would have produced.
//   * A trial that throws poisons the run: workers stop claiming new trials
//     and the lowest-index exception is rethrown on the launching thread
//     (the error a sequential run would have hit first).
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace hcs::runner {

/// Identity of one trial; the only inputs a trial body may depend on.
struct Trial {
  int index = 0;            // 0-based trial index
  std::uint64_t seed = 0;   // base_seed + index (the "mpirun i" convention)
};

/// Worker-thread count resolution: 0 = one per hardware thread (>= 1).
int resolve_jobs(int jobs) noexcept;

class TrialRunner {
 public:
  /// `jobs` <= 0 selects one worker per hardware thread.
  explicit TrialRunner(int jobs = 1) : jobs_(resolve_jobs(jobs)) {}

  int jobs() const noexcept { return jobs_; }

  /// Runs fn(trial) for every trial index in [0, ntrials) and returns the
  /// results in trial-index order.  fn must be callable from any thread and
  /// touch only per-trial state (plus read-only shared inputs).
  template <typename Fn>
  auto map(int ntrials, std::uint64_t base_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const Trial&>> {
    using R = std::invoke_result_t<Fn&, const Trial&>;
    static_assert(std::is_default_constructible_v<R>,
                  "TrialRunner::map: trial result type must be default-constructible");
    std::vector<R> results(static_cast<std::size_t>(ntrials > 0 ? ntrials : 0));
    run_indexed(ntrials, base_seed, [&](const Trial& trial) {
      results[static_cast<std::size_t>(trial.index)] = fn(trial);
    });
    return results;
  }

  /// Like map, but for trial bodies without a result (side effects into
  /// per-trial slots owned by the caller).
  template <typename Fn>
  void for_each(int ntrials, std::uint64_t base_seed, Fn&& fn) {
    run_indexed(ntrials, base_seed, [&](const Trial& trial) { fn(trial); });
  }

 private:
  void run_indexed(int ntrials, std::uint64_t base_seed,
                   const std::function<void(const Trial&)>& body);

  int jobs_;
};

}  // namespace hcs::runner
