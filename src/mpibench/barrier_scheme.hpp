// Barrier-based measurement (the IMB / OSU Micro-Benchmarks approach).
#pragma once

#include "mpibench/scheme.hpp"

namespace hcs::mpibench {

struct BarrierSchemeParams {
  int nrep = 100;
  simmpi::BarrierAlgo barrier = simmpi::BarrierAlgo::kTree;
};

/// Collective: every rank calls it with its *local* clock.  Per repetition:
/// MPI_Barrier, then time the operation with local timestamps.  Per-rank
/// latencies are gathered on rank 0.
// Parameters are taken BY VALUE: these are lazily-started coroutines, and a
// caller's temporary bound to a reference parameter would dangle by the time
// the coroutine body runs.
sim::Task<MeasurementResult> run_barrier_scheme(simmpi::Comm& comm, vclock::Clock& clk,
                                                CollectiveOp op, BarrierSchemeParams params);

}  // namespace hcs::mpibench
