// Measurement schemes for benchmarking MPI collectives (paper §II, §V-A).
//
// A scheme decides *when* each repetition of the operation under test starts
// on each rank and which repetitions count.  The paper contrasts three:
//   * barrier-based (IMB / OSU style): re-synchronize with MPI_Barrier before
//     every repetition; biased when the barrier's exit imbalance is of the
//     same order as the measured operation;
//   * window-based (SKaMPI / NBCBench style): pre-agreed start times every
//     `window` seconds on a global clock; needs a good window-size estimate
//     and one outlier invalidates many subsequent windows;
//   * Round-Time (this paper, Algorithm 5): the reference broadcasts the next
//     start time after every repetition, and the run is bounded by a time
//     slice instead of a repetition count.
#pragma once

#include <functional>
#include <vector>

#include "sim/task.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "vclock/clock.hpp"

namespace hcs::mpibench {

/// The operation under test, invoked once per repetition on every rank.
using CollectiveOp = std::function<sim::Task<void>(simmpi::Comm&)>;

/// Builds an Allreduce of `msize` bytes with the given algorithm — the
/// workload of the paper's Figs. 7 and 9.
CollectiveOp make_allreduce_op(std::int64_t msize,
                               simmpi::AllreduceAlgo algo = simmpi::AllreduceAlgo::kRecursiveDoubling);

/// Builds a barrier op (used when measuring barriers themselves).
CollectiveOp make_barrier_op(simmpi::BarrierAlgo algo);

/// Per-run measurement data, collected on comm rank 0 (empty elsewhere).
struct MeasurementResult {
  /// latencies[rep][rank]: per-rank local duration of repetition `rep`.
  std::vector<std::vector<double>> latencies;
  /// Per-rep "true" collective runtime where the scheme can compute one
  /// (Round-Time / window: max over ranks of finish - common start).
  std::vector<double> global_runtimes;
  int invalid_reps = 0;
  int valid_reps() const { return static_cast<int>(latencies.size()); }
};

}  // namespace hcs::mpibench
