#include "mpibench/barrier_scheme.hpp"

#include "simmpi/collectives.hpp"
#include "trace/metrics.hpp"
#include "trace/span.hpp"

namespace hcs::mpibench {

CollectiveOp make_allreduce_op(std::int64_t msize, simmpi::AllreduceAlgo algo) {
  return [msize, algo](simmpi::Comm& comm) -> sim::Task<void> {
    std::vector<double> payload(1, 1.0);
    (void)co_await simmpi::allreduce(comm, std::move(payload), simmpi::ReduceOp::kSum, algo,
                                     msize);
  };
}

CollectiveOp make_barrier_op(simmpi::BarrierAlgo algo) {
  return [algo](simmpi::Comm& comm) -> sim::Task<void> { co_await simmpi::barrier(comm, algo); };
}

sim::Task<MeasurementResult> run_barrier_scheme(simmpi::Comm& comm, vclock::Clock& clk,
                                                CollectiveOp op, BarrierSchemeParams params) {
  HCS_TRACE_SCOPE(Bench, comm.my_world_rank(), "barrier_scheme", params.nrep);
  std::vector<double> my_latencies;
  my_latencies.reserve(static_cast<std::size_t>(params.nrep));
  for (int rep = 0; rep < params.nrep; ++rep) {
    co_await simmpi::barrier(comm, params.barrier);
    const double t0 = clk.now();
    co_await op(comm);
    my_latencies.push_back(clk.now() - t0);
    if (comm.rank() == 0) HCS_METRIC_INC("mpibench.reps.valid");
  }
  const std::vector<double> all = co_await simmpi::gather(comm, std::move(my_latencies), 0);

  MeasurementResult result;
  if (comm.rank() == 0) {
    const auto p = static_cast<std::size_t>(comm.size());
    result.latencies.resize(static_cast<std::size_t>(params.nrep));
    for (std::size_t rep = 0; rep < result.latencies.size(); ++rep) {
      result.latencies[rep].resize(p);
      for (std::size_t r = 0; r < p; ++r) {
        result.latencies[rep][r] = all[r * static_cast<std::size_t>(params.nrep) + rep];
      }
    }
  }
  co_return result;
}

}  // namespace hcs::mpibench
