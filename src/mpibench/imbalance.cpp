#include "mpibench/imbalance.hpp"

#include <algorithm>

#include "mpibench/window_scheme.hpp"  // wait_until_global
#include "util/vec.hpp"

namespace hcs::mpibench {

sim::Task<std::vector<double>> measure_barrier_imbalance(simmpi::Comm& comm,
                                                         vclock::Clock& g_clk,
                                                         simmpi::BarrierAlgo algo,
                                                         ImbalanceParams params) {
  const int r = comm.rank();
  // Per call: [on_time, exit_timestamp].
  std::vector<double> record;
  record.reserve(2 * static_cast<std::size_t>(params.ncalls));
  for (int call = 0; call < params.ncalls; ++call) {
    std::vector<double> start_msg;
    if (r == 0) start_msg = util::vec(g_clk.now() + params.slack);
    start_msg = co_await simmpi::bcast(comm, std::move(start_msg), 0);
    const bool on_time = co_await wait_until_global(comm, g_clk, start_msg.at(0));
    co_await simmpi::barrier(comm, algo);
    record.push_back(on_time ? 1.0 : 0.0);
    record.push_back(g_clk.now());
  }

  const std::vector<double> all = co_await simmpi::gather(comm, std::move(record), 0);
  std::vector<double> imbalances;
  if (r != 0) co_return imbalances;

  const auto p = static_cast<std::size_t>(comm.size());
  const auto stride = 2 * static_cast<std::size_t>(params.ncalls);
  for (int call = 0; call < params.ncalls; ++call) {
    bool valid = true;
    double lo = 0.0, hi = 0.0;
    for (std::size_t rr = 0; rr < p; ++rr) {
      const std::size_t base = rr * stride + 2 * static_cast<std::size_t>(call);
      valid = valid && all[base] > 0.5;
      const double exit_ts = all[base + 1];
      if (rr == 0) {
        lo = hi = exit_ts;
      } else {
        lo = std::min(lo, exit_ts);
        hi = std::max(hi, exit_ts);
      }
    }
    if (valid) imbalances.push_back(hi - lo);
  }
  co_return imbalances;
}

}  // namespace hcs::mpibench
