#include "mpibench/roundtime_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpibench/window_scheme.hpp"  // wait_until_global
#include "trace/metrics.hpp"
#include "trace/span.hpp"
#include "util/vec.hpp"

namespace hcs::mpibench {

sim::Task<MeasurementResult> run_roundtime_scheme(simmpi::Comm& comm, vclock::Clock& g_clk,
                                                  CollectiveOp op, RoundTimeParams params) {
  if (params.slack_factor < 1.0) {
    throw std::invalid_argument("Round-Time: slack factor B must be >= 1");
  }
  const int r = comm.rank();
  HCS_TRACE_SCOPE(Bench, comm.my_world_rank(), "roundtime_scheme", params.max_nrep);

  // ESTIMATE_LATENCY(MPI_Bcast): the quantity that matters is how long an
  // announcement needs to reach the *last* rank.  The root timestamps each
  // warmup broadcast on the global clock; every rank measures the arrival
  // delay of the timestamp on its own global clock, and an Allreduce(max)
  // yields the worst-case propagation latency (residual clock error is
  // automatically folded into the estimate).
  double lat_bcast = 1e-6;
  {
    for (int i = 0; i < params.warmup_bcasts; ++i) {
      std::vector<double> stamp;
      if (r == 0) stamp = util::vec(g_clk.now());
      stamp = co_await simmpi::bcast(comm, std::move(stamp), 0);
      lat_bcast = std::max(lat_bcast, g_clk.now() - stamp.at(0));
    }
    const std::vector<double> worst =
        co_await simmpi::allreduce(comm, util::vec(lat_bcast), simmpi::ReduceOp::kMax);
    lat_bcast = worst.at(0);
  }

  const double t_start = g_clk.now();
  // Per valid rep: [latency, end] on this rank; root also records starts.
  std::vector<double> record;
  std::vector<double> start_times;
  int nrep = 0;
  int invalid_total = 0;
  for (;;) {
    // The reference picks the next start time and broadcasts it.
    std::vector<double> start_msg;
    if (r == 0) start_msg = util::vec(g_clk.now() + params.slack_factor * lat_bcast);
    start_msg = co_await simmpi::bcast(comm, std::move(start_msg), 0);
    const double start_time = start_msg.at(0);

    double invalid = 0.0;
    if (!co_await wait_until_global(comm, g_clk, start_time)) invalid = 1.0;

    co_await op(comm);
    const double end = g_clk.now();

    const double out_of_time = (g_clk.now() - t_start >= params.max_time_slice) ? 1.0 : 0.0;
    const std::vector<double> flags =
        co_await simmpi::allreduce(comm, util::vec(invalid, out_of_time), simmpi::ReduceOp::kMax);

    if (flags.at(0) == 0.0) {
      record.push_back(end - start_time);
      record.push_back(end);
      if (r == 0) {
        start_times.push_back(start_time);
        HCS_METRIC_INC("mpibench.reps.valid");
      }
      ++nrep;
    } else {
      ++invalid_total;
      if (r == 0) HCS_METRIC_INC("mpibench.reps.invalid");
    }
    if (flags.at(1) != 0.0 || nrep >= params.max_nrep) break;
  }

  const std::vector<double> all = co_await simmpi::gather(comm, std::move(record), 0);
  MeasurementResult result;
  if (r != 0) co_return result;

  result.invalid_reps = invalid_total;
  const auto p = static_cast<std::size_t>(comm.size());
  const auto stride = 2 * static_cast<std::size_t>(nrep);
  for (int rep = 0; rep < nrep; ++rep) {
    std::vector<double> lats(p);
    double max_end = 0.0;
    for (std::size_t rr = 0; rr < p; ++rr) {
      const std::size_t base = rr * stride + 2 * static_cast<std::size_t>(rep);
      lats[rr] = all[base];
      max_end = std::max(max_end, all[base + 1]);
    }
    result.latencies.push_back(std::move(lats));
    result.global_runtimes.push_back(max_end - start_times[static_cast<std::size_t>(rep)]);
  }
  co_return result;
}

}  // namespace hcs::mpibench
