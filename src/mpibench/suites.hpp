// Benchmark-suite emulations (paper §V-B, Figs. 7 and 9).
//
// The paper compares the latency of MPI_Allreduce as reported by the Intel
// MPI Benchmarks, the OSU Micro-Benchmarks and ReproMPI.  The first two use
// the barrier-based scheme; ReproMPI uses Round-Time.  The suites also
// differ in how they reduce per-rank samples to one number:
//   * OSU reports the mean over repetitions of the across-rank average,
//   * IMB reports the mean over repetitions of the across-rank maximum,
//   * ReproMPI reports the median over repetitions of the global runtime
//     (max finish - common start, possible only with a global clock).
#pragma once

#include "mpibench/barrier_scheme.hpp"
#include "mpibench/roundtime_scheme.hpp"

namespace hcs::mpibench {

struct SuiteReport {
  double reported_latency = 0.0;  // seconds
  int reps = 0;
  int invalid_reps = 0;
};

/// OSU-style: barrier-based, across-rank mean, mean over reps.
/// Parameters by value (lazily-started coroutines; see barrier_scheme.hpp).
sim::Task<SuiteReport> run_osu_like(simmpi::Comm& comm, vclock::Clock& local_clk,
                                    CollectiveOp op, BarrierSchemeParams params);

/// IMB-style: barrier-based, across-rank max, mean over reps.
sim::Task<SuiteReport> run_imb_like(simmpi::Comm& comm, vclock::Clock& local_clk,
                                    CollectiveOp op, BarrierSchemeParams params);

/// ReproMPI-style: Round-Time with a global clock, median of global runtimes.
sim::Task<SuiteReport> run_repro_like(simmpi::Comm& comm, vclock::Clock& g_clk,
                                      CollectiveOp op, RoundTimeParams params);

}  // namespace hcs::mpibench
