#include "mpibench/suites.hpp"

#include "util/stats.hpp"

namespace hcs::mpibench {

namespace {
SuiteReport reduce_barrier_result(const MeasurementResult& m, bool across_rank_max) {
  SuiteReport report;
  report.reps = m.valid_reps();
  report.invalid_reps = m.invalid_reps;
  if (m.latencies.empty()) return report;
  std::vector<double> per_rep;
  per_rep.reserve(m.latencies.size());
  for (const std::vector<double>& ranks : m.latencies) {
    per_rep.push_back(across_rank_max ? util::max(ranks) : util::mean(ranks));
  }
  report.reported_latency = util::mean(per_rep);
  return report;
}
}  // namespace

sim::Task<SuiteReport> run_osu_like(simmpi::Comm& comm, vclock::Clock& local_clk,
                                    CollectiveOp op, BarrierSchemeParams params) {
  const MeasurementResult m = co_await run_barrier_scheme(comm, local_clk, std::move(op), params);
  co_return reduce_barrier_result(m, /*across_rank_max=*/false);
}

sim::Task<SuiteReport> run_imb_like(simmpi::Comm& comm, vclock::Clock& local_clk,
                                    CollectiveOp op, BarrierSchemeParams params) {
  const MeasurementResult m = co_await run_barrier_scheme(comm, local_clk, std::move(op), params);
  co_return reduce_barrier_result(m, /*across_rank_max=*/true);
}

sim::Task<SuiteReport> run_repro_like(simmpi::Comm& comm, vclock::Clock& g_clk,
                                      CollectiveOp op, RoundTimeParams params) {
  const MeasurementResult m = co_await run_roundtime_scheme(comm, g_clk, std::move(op), params);
  SuiteReport report;
  report.reps = m.valid_reps();
  report.invalid_reps = m.invalid_reps;
  if (!m.global_runtimes.empty()) {
    report.reported_latency = util::median(m.global_runtimes);
  }
  co_return report;
}

}  // namespace hcs::mpibench
