// Round-Time measurement scheme (paper §V-A, Algorithm 5) — the paper's
// third contribution.
//
// Instead of fixed windows, the reference process broadcasts the *next*
// start time after every repetition (current global time plus B times the
// estimated broadcast latency).  A late rank invalidates only that one
// repetition, and the whole measurement is bounded by a wall-clock time
// slice rather than a repetition count.
#pragma once

#include <limits>

#include "mpibench/scheme.hpp"

namespace hcs::mpibench {

struct RoundTimeParams {
  double slack_factor = 3.0;   // B in Algorithm 5 (>= 1)
  double max_time_slice = 5.0; // seconds granted to this operation
  int max_nrep = std::numeric_limits<int>::max();
  int warmup_bcasts = 10;      // repetitions used to estimate lat(MPI_Bcast)
};

/// Collective: every rank calls it with its synchronized *global* clock.
/// Parameters by value (lazily-started coroutine; see barrier_scheme.hpp).
sim::Task<MeasurementResult> run_roundtime_scheme(simmpi::Comm& comm, vclock::Clock& g_clk,
                                                  CollectiveOp op, RoundTimeParams params);

}  // namespace hcs::mpibench
