// Barrier exit-imbalance measurement (paper §V-B, Fig. 8).
//
// "To measure this imbalance, we synchronize the barrier with a common start
// time (Round-Time) and record the timestamp when each process exits the
// barrier.  We compute the maximum skew between the first and the last
// process that leave the barrier, and this duration is called imbalance."
#pragma once

#include "mpibench/scheme.hpp"

namespace hcs::mpibench {

struct ImbalanceParams {
  int ncalls = 500;           // barrier calls per run (paper: 500 per mpirun)
  double slack = 50e-6;       // lead time between announcement and start
};

/// Collective: every rank calls it with its synchronized global clock.
/// Returns, on comm rank 0, one imbalance value (max exit - min exit, in
/// seconds) per valid call; empty elsewhere.
/// Parameters by value (lazily-started coroutine; see barrier_scheme.hpp).
sim::Task<std::vector<double>> measure_barrier_imbalance(simmpi::Comm& comm,
                                                         vclock::Clock& g_clk,
                                                         simmpi::BarrierAlgo algo,
                                                         ImbalanceParams params);

}  // namespace hcs::mpibench
