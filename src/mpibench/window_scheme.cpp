#include "mpibench/window_scheme.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/span.hpp"
#include "util/vec.hpp"

namespace hcs::mpibench {

sim::Task<bool> wait_until_global(simmpi::Comm& comm, vclock::Clock& g_clk, double start_time) {
  if (g_clk.now() >= start_time) co_return false;
  const sim::Time now = comm.sim().now();
  const sim::Time target = g_clk.true_time_of(start_time, now, now + 1.0);
  if (target <= now) co_return false;
  co_await comm.sim().delay(target - now);
  co_return true;
}

sim::Task<MeasurementResult> run_window_scheme(simmpi::Comm& comm, vclock::Clock& g_clk,
                                               CollectiveOp op, WindowSchemeParams params) {
  HCS_TRACE_SCOPE(Bench, comm.my_world_rank(), "window_scheme", params.nrep);
  // Rank 0 announces the first window start on the global clock.
  std::vector<double> begin_msg;
  if (comm.rank() == 0) begin_msg = util::vec(g_clk.now() + params.initial_slack);
  begin_msg = co_await simmpi::bcast(comm, std::move(begin_msg), 0);
  const double t_begin = begin_msg.at(0);

  // Per rep: [on_time, latency, end_time] on this rank.
  std::vector<double> record;
  record.reserve(3 * static_cast<std::size_t>(params.nrep));
  for (int rep = 0; rep < params.nrep; ++rep) {
    const double start_time = t_begin + static_cast<double>(rep) * params.window;
    const bool on_time = co_await wait_until_global(comm, g_clk, start_time);
    const double t0 = g_clk.now();
    co_await op(comm);
    const double t1 = g_clk.now();
    record.push_back(on_time ? 1.0 : 0.0);
    record.push_back(t1 - t0);
    record.push_back(t1);
  }

  const std::vector<double> all = co_await simmpi::gather(comm, std::move(record), 0);
  MeasurementResult result;
  if (comm.rank() != 0) co_return result;

  const auto p = static_cast<std::size_t>(comm.size());
  const auto stride = 3 * static_cast<std::size_t>(params.nrep);
  for (int rep = 0; rep < params.nrep; ++rep) {
    bool all_on_time = true;
    std::vector<double> lats(p);
    double max_end = 0.0;
    for (std::size_t r = 0; r < p; ++r) {
      const std::size_t base = r * stride + 3 * static_cast<std::size_t>(rep);
      all_on_time = all_on_time && all[base] > 0.5;
      lats[r] = all[base + 1];
      max_end = std::max(max_end, all[base + 2]);
    }
    if (!all_on_time) {
      ++result.invalid_reps;
      HCS_METRIC_INC("mpibench.reps.invalid");
      continue;
    }
    HCS_METRIC_INC("mpibench.reps.valid");
    result.latencies.push_back(std::move(lats));
    const double start_time = t_begin + static_cast<double>(rep) * params.window;
    result.global_runtimes.push_back(max_end - start_time);
  }
  co_return result;
}

}  // namespace hcs::mpibench
