// Window-based measurement (the SKaMPI / NBCBench approach).
//
// All ranks agree on a series of start times t_begin + k * window on the
// global clock.  A rank that reaches a window late invalidates that
// repetition; because the windows are fixed in advance, one slow repetition
// (an outlier) can invalidate many subsequent windows — the weakness
// Round-Time fixes (paper §II, §V-A).
#pragma once

#include "mpibench/scheme.hpp"

namespace hcs::mpibench {

struct WindowSchemeParams {
  int nrep = 100;
  double window = 100e-6;      // seconds between consecutive start times
  double initial_slack = 1e-3; // lead time before the first window
};

/// Collective: every rank calls it with its synchronized *global* clock.
/// Parameters by value (lazily-started coroutine; see barrier_scheme.hpp).
sim::Task<MeasurementResult> run_window_scheme(simmpi::Comm& comm, vclock::Clock& g_clk,
                                               CollectiveOp op, WindowSchemeParams params);

/// Waits until `g_clk` reads `start_time`.  Returns false (without waiting)
/// when the clock is already past it — the caller is late.
sim::Task<bool> wait_until_global(simmpi::Comm& comm, vclock::Clock& g_clk, double start_time);

}  // namespace hcs::mpibench
