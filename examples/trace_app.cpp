// Tracing example: run a bulk-synchronous mini-application under the trace
// library, once with raw per-core clocks and once with an H2HCA global
// clock, and show what each trace can (and cannot) tell you.
//
//   $ ./examples/trace_app [--nodes N] [--cores C] [--iterations I]
#include <fstream>
#include <iostream>

#include "clocksync/factory.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/vec.hpp"

namespace {

using namespace hcs;

std::vector<trace::GanttRow> run_app(const topology::MachineConfig& machine, bool global_clock,
                                     int iterations, std::uint64_t seed,
                                     const std::string& json_path = "") {
  simmpi::World world(machine, seed);
  std::vector<trace::Tracer> tracers;
  tracers.reserve(static_cast<std::size_t>(world.size()));
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    vclock::ClockPtr clk = ctx.base_clock();
    if (global_clock) {
      // NOTE: this machine has per-core time sources, so ClockPropSync would
      // be invalid here (paper §IV-C applicability condition) — use flat
      // HCA3, which only assumes message passing.
      auto sync = clocksync::make_sync("hca3/recompute_intercept/200/skampi_offset/20");
      clk = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    }
    tracers.emplace_back(ctx.rank(), clk);
    trace::Tracer& tracer = tracers.back();
    for (int it = 0; it < iterations; ++it) {
      const std::size_t c = tracer.begin_event("compute", it);
      co_await ctx.sim().delay(30e-6 + 1e-6 * (ctx.rank() % 8));  // imbalanced work
      tracer.end_event(c);
      const std::size_t a = tracer.begin_event("allreduce", it);
      (void)co_await simmpi::allreduce(ctx.comm_world(), util::vec(1.0), simmpi::ReduceOp::kSum,
                                       simmpi::AllreduceAlgo::kRecursiveDoubling, 8);
      tracer.end_event(a);
    }
  });
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << trace::to_chrome_trace_json(tracers);
    std::cout << "wrote Chrome trace (chrome://tracing / ui.perfetto.dev): " << json_path
              << "\n";
  }
  return trace::gantt_rows(tracers, "allreduce", iterations / 2);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const int cores = static_cast<int>(cli.get_int("cores", 4));
  const int iterations = static_cast<int>(cli.get_int("iterations", 10));

  // Per-core timers with NTP-like offsets: the gettimeofday situation.
  auto machine = topology::testbox(nodes, cores)
                     .with_time_source(topology::TimeSourceScope::kPerCore);
  machine.clocks.initial_offset_abs = 200e-6;
  std::cout << "machine: " << machine.describe() << "\n\n";

  for (const bool global_clock : {false, true}) {
    const std::string json_path =
        cli.has("json") ? (global_clock ? "trace_global.json" : "trace_local.json") : "";
    const auto rows = run_app(machine, global_clock, iterations, cli.seed(7), json_path);
    std::cout << (global_clock ? "--- global clock (HCA3) ---" : "--- local clocks ---")
              << "\n";
    util::Table table({"rank", "start_us", "duration_us"});
    for (const auto& row : rows) {
      table.add_row({std::to_string(row.rank), util::fmt_us(row.start, 2),
                     util::fmt_us(row.duration, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "With local clocks the start column scatters over the clock offsets; with the\n"
               "global clock it shows the true arrival pattern into the Allreduce.\n";
  return 0;
}
