// Observability showcase: run a bulk-synchronous mini-application under full
// instrumentation — structured tracer + metrics registry — once with raw
// per-core clocks and once with an HCA3 global clock.
//
//   $ ./examples/trace_app [--nodes N] [--cores C] [--iterations I]
//                          [--trace-out run.json] [--metrics-out run.csv]
//
// --trace-out writes a Chrome trace of the HCA3 run (load it in
// chrome://tracing or https://ui.perfetto.dev): one row per rank showing the
// sync phases (hca3.sync_clocks, learn_clock_model, pingpong_burst) followed
// by the app's compute/allreduce iterations.  The metrics summary shows
// where the messages went (per topology level) and the RTT distribution the
// sync algorithm saw — the paper's "where did the RTT budget go" question.
#include <fstream>
#include <iostream>

#include "clocksync/factory.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "trace/chrome_export.hpp"
#include "trace/metrics.hpp"
#include "trace/span.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"
#include "util/vec.hpp"

namespace {

using namespace hcs;

std::vector<trace::GanttRow> run_app(const topology::MachineConfig& machine, bool global_clock,
                                     int iterations, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  std::vector<trace::IntervalTracer> tracers;
  tracers.reserve(static_cast<std::size_t>(world.size()));
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    vclock::ClockPtr clk = ctx.base_clock();
    if (global_clock) {
      // NOTE: this machine has per-core time sources, so ClockPropSync would
      // be invalid here (paper §IV-C applicability condition) — use flat
      // HCA3, which only assumes message passing.
      auto sync = clocksync::make_sync("hca3/recompute_intercept/200/skampi_offset/20");
      clk = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    }
    tracers.emplace_back(ctx.rank(), clk);
    trace::IntervalTracer& tracer = tracers.back();
    for (int it = 0; it < iterations; ++it) {
      {
        HCS_TRACE_SCOPE(App, ctx.rank(), "compute", it);
        const std::size_t c = tracer.begin_event("compute", it);
        co_await ctx.sim().delay(30e-6 + 1e-6 * (ctx.rank() % 8));  // imbalanced work
        tracer.end_event(c);
      }
      {
        HCS_TRACE_SCOPE(App, ctx.rank(), "allreduce_iter", it);
        const std::size_t a = tracer.begin_event("allreduce", it);
        (void)co_await simmpi::allreduce(ctx.comm_world(), util::vec(1.0), simmpi::ReduceOp::kSum,
                                         simmpi::AllreduceAlgo::kRecursiveDoubling, 8);
        tracer.end_event(a);
      }
    }
  });
  return trace::gantt_rows(tracers, "allreduce", iterations / 2);
}

void print_gantt(const std::vector<trace::GanttRow>& rows, const std::string& title) {
  std::cout << title << "\n";
  util::Table table({"rank", "start_us", "duration_us"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.rank), util::fmt_us(row.start, 2),
                   util::fmt_us(row.duration, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const int cores = static_cast<int>(cli.get_int("cores", 4));
  const int iterations = static_cast<int>(cli.get_int("iterations", 10));
  const std::string trace_path = cli.trace_out();
  const std::string metrics_path = cli.metrics_out();

  // Per-core timers with NTP-like offsets: the gettimeofday situation.
  auto machine = topology::testbox(nodes, cores)
                     .with_time_source(topology::TimeSourceScope::kPerCore);
  machine.clocks.initial_offset_abs = 200e-6;
  std::cout << "machine: " << machine.describe() << "\n\n";

  // Pass 1 — local clocks, uninstrumented: the baseline Gantt.
  print_gantt(run_app(machine, false, iterations, cli.seed(7)), "--- local clocks ---");

  // Pass 2 — HCA3 global clock under the structured tracer + metrics.  Both
  // must be installed before the World is built so the network model and the
  // ping-pong fast path resolve their metric handles.
  trace::Tracer structured;
  trace::MetricsRegistry metrics;
  {
    const trace::ScopedTracer install_tracer(&structured);
    const trace::ScopedMetrics install_metrics(&metrics);
    print_gantt(run_app(machine, true, iterations, cli.seed(7)),
                "--- global clock (HCA3) ---");
  }
  std::cout << "With local clocks the start column scatters over the clock offsets; with the\n"
               "global clock it shows the true arrival pattern into the Allreduce.\n";

  std::cout << "\n--- metrics summary: HCA3 run (histograms in us) ---\n";
  trace::print_metrics_summary(std::cout, metrics);
  const trace::HistogramMetric& rtt = metrics.histogram("sync.rtt");
  if (rtt.count() > 0) {
    std::cout << "\nsync ping-pong RTT distribution (" << rtt.count() << " exchanges):\n";
    util::print_histogram(std::cout, util::make_histogram(rtt.samples(), 12), 40, 1e6, "us");
  }

  if (!trace_path.empty()) {
    if (!trace::write_chrome_trace_file(trace_path, structured)) {
      std::cerr << "failed to write trace: " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nwrote Chrome trace (" << structured.recorded() - structured.dropped()
              << " events, " << structured.dropped()
              << " dropped; chrome://tracing / ui.perfetto.dev): " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "failed to write metrics: " << metrics_path << "\n";
      return 1;
    }
    trace::write_metrics_csv(out, metrics);
    std::cout << "wrote metrics CSV: " << metrics_path << "\n";
  }
  return 0;
}
