// Extension example: implementing a custom ClockSync and plugging it into
// the same harness as the built-in algorithms.
//
// The algorithm here ("OffsetOnlySync") is the naive baseline the paper
// improves on: a single offset measurement per rank against the root, no
// drift model at all (slope = 0) — like SKaMPI's original scheme.  The
// output shows it is fine right after synchronization and degrades linearly
// with time, which is precisely why HCA-family algorithms fit a slope.
//
//   $ ./examples/custom_sync_algorithm [--nodes N] [--cores C]
#include <iostream>
#include <stdexcept>

#include "clocksync/accuracy.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/model_learning.hpp"
#include "clocksync/skampi_offset.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "vclock/global_clock.hpp"

namespace {

using namespace hcs;

// A ClockSync only needs sync_clocks() + name().  This one measures the
// offset to rank 0 once per rank (sequentially, like JK but without the
// regression) and applies it as a constant correction.
class OffsetOnlySync final : public clocksync::ClockSync {
 public:
  explicit OffsetOnlySync(int nexchanges) : oalg_(nexchanges) {}

  sim::Task<clocksync::SyncResult> sync_clocks(simmpi::Comm& comm,
                                               vclock::ClockPtr clk) override {
    const int r = comm.rank();
    if (r == 0) {
      for (int client = 1; client < comm.size(); ++client) {
        (void)co_await oalg_.measure_offset(comm, *clk, 0, client);
      }
      co_return clocksync::SyncResult{vclock::GlobalClockLM::identity(std::move(clk)), {}};
    }
    const clocksync::ClockOffset o = co_await oalg_.measure_offset(comm, *clk, 0, r);
    // Constant offset, no drift model: slope = 0.
    co_return clocksync::SyncResult{
        std::make_shared<vclock::GlobalClockLM>(std::move(clk),
                                                vclock::LinearModel{0.0, o.offset}),
        {}};
  }

  std::string name() const override { return "offset_only"; }

 private:
  clocksync::SKaMPIOffset oalg_;
};

struct Row {
  std::string name;
  double t0_us, t10_us;
};

template <typename MakeSync>
Row evaluate(const topology::MachineConfig& machine, const std::string& name,
             MakeSync make_sync_fn, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  Row row{name, 0, 0};
  const auto clients = clocksync::sample_clients(world.size(), 0, 1.0, 1);
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = make_sync_fn();
    const clocksync::SyncResult res =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    if (!res.report.clean()) {
      throw std::runtime_error("sync reported degraded health for " + name);
    }
    clocksync::SKaMPIOffset oalg(20);
    const auto acc = co_await clocksync::check_clock_accuracy(ctx.comm_world(), *res.clock, oalg,
                                                              10.0, clients);
    if (ctx.rank() == 0) {
      row.t0_us = acc.max_abs_t0 * 1e6;
      row.t10_us = acc.max_abs_t1 * 1e6;
    }
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const int cores = static_cast<int>(cli.get_int("cores", 2));
  auto machine = topology::testbox(nodes, cores);
  machine.clocks.base_skew_abs = 2e-6;  // make drift clearly visible in 10 s
  std::cout << "machine: " << machine.describe() << "\n\n";

  util::Table table({"algorithm", "max offset at 0 s [us]", "max offset at 10 s [us]"});
  const Row custom = evaluate(machine, "offset_only (custom)",
                              [] { return std::make_unique<OffsetOnlySync>(20); }, cli.seed(3));
  const Row hca3 =
      evaluate(machine, "hca3 (built-in)",
               [] { return clocksync::make_sync("hca3/recompute_intercept/300/skampi_offset/30"); },
               cli.seed(3));
  table.add_row({custom.name, util::fmt(custom.t0_us, 3), util::fmt(custom.t10_us, 3)});
  table.add_row({hca3.name, util::fmt(hca3.t0_us, 3), util::fmt(hca3.t10_us, 3)});
  table.print(std::cout);

  std::cout << "\nWithout a drift model the custom algorithm degrades by (skew x 10 s) — tens "
               "of microseconds — while HCA3's fitted slope keeps the clock usable.\n";
  return 0;
}
