// mpibench_cli — a ReproMPI-style command-line benchmark runner on top of the
// simulated cluster; the "product" the paper's methodology ships.
//
//   $ ./examples/mpibench_cli --machine jupiter --nodes 8
//       --op allreduce --op-algo rec_doubling
//       --msizes 4,16,64,256,1024 --scheme roundtime
//       --sync "hca3/recompute_intercept/300/skampi_offset/30"
//       --nrep 100 --summary median --csv
//   (one command; wrapped here for readability)
//
// Options:
//   --machine jupiter|hydra|titan|testbox   (default testbox)
//   --nodes N --cores C                     (machine shape override)
//   --op allreduce|bcast|barrier|alltoall|reduce|scan
//   --op-algo <algorithm name>              (per-op; see --help-algos)
//   --msizes a,b,c                          (bytes; ignored for barrier)
//   --scheme roundtime|barrier|window
//   --barrier tree|bruck|double_ring|rec_doubling|linear   (scheme=barrier)
//   --window-us W                           (scheme=window)
//   --sync LABEL                            (clock sync config string)
//   --nrep N --seed S --summary mean|median --csv
#include <iostream>
#include <sstream>

#include "clocksync/factory.hpp"
#include "mpibench/suites.hpp"
#include "mpibench/window_scheme.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/vec.hpp"

namespace {

using namespace hcs;

std::vector<std::int64_t> parse_msizes(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  if (out.empty()) throw std::invalid_argument("--msizes: empty list");
  return out;
}

topology::MachineConfig parse_machine(const util::Cli& cli) {
  const std::string name = cli.get("machine", "testbox");
  const int nodes = static_cast<int>(cli.get_int("nodes", 0));
  const int cores = static_cast<int>(cli.get_int("cores", 0));
  topology::MachineConfig m = [&] {
    if (name == "jupiter") return topology::jupiter();
    if (name == "hydra") return topology::hydra();
    if (name == "titan") return topology::titan();
    if (name == "testbox") return topology::testbox(nodes > 0 ? nodes : 4, cores > 0 ? cores : 4);
    throw std::invalid_argument("unknown --machine '" + name + "'");
  }();
  if (nodes > 0 && name != "testbox") m = m.with_nodes(nodes);
  return m;
}

simmpi::BarrierAlgo parse_barrier(const std::string& name) {
  if (name == "tree") return simmpi::BarrierAlgo::kTree;
  if (name == "bruck") return simmpi::BarrierAlgo::kBruck;
  if (name == "double_ring") return simmpi::BarrierAlgo::kDoubleRing;
  if (name == "rec_doubling") return simmpi::BarrierAlgo::kRecursiveDoubling;
  if (name == "linear") return simmpi::BarrierAlgo::kLinear;
  throw std::invalid_argument("unknown --barrier '" + name + "'");
}

mpibench::CollectiveOp parse_op(const std::string& op, const std::string& algo,
                                std::int64_t msize) {
  if (op == "allreduce") {
    simmpi::AllreduceAlgo a = simmpi::AllreduceAlgo::kRecursiveDoubling;
    if (algo == "ring") a = simmpi::AllreduceAlgo::kRing;
    else if (algo == "reduce_bcast") a = simmpi::AllreduceAlgo::kReduceBcast;
    else if (algo == "rabenseifner") a = simmpi::AllreduceAlgo::kRabenseifner;
    else if (!algo.empty() && algo != "rec_doubling") {
      throw std::invalid_argument("unknown allreduce algorithm '" + algo + "'");
    }
    return mpibench::make_allreduce_op(msize, a);
  }
  if (op == "bcast") {
    simmpi::BcastAlgo a = simmpi::BcastAlgo::kBinomial;
    if (algo == "linear") a = simmpi::BcastAlgo::kLinear;
    else if (algo == "chain") a = simmpi::BcastAlgo::kChain;
    else if (algo == "scatter_allgather") a = simmpi::BcastAlgo::kScatterAllgather;
    else if (!algo.empty() && algo != "binomial") {
      throw std::invalid_argument("unknown bcast algorithm '" + algo + "'");
    }
    return [msize, a](simmpi::Comm& comm) -> sim::Task<void> {
      (void)co_await simmpi::bcast(comm, util::vec(1.0), 0, a, msize);
    };
  }
  if (op == "barrier") return mpibench::make_barrier_op(parse_barrier(algo.empty() ? "tree" : algo));
  if (op == "alltoall") {
    return [msize](simmpi::Comm& comm) -> sim::Task<void> {
      std::vector<double> buf(static_cast<std::size_t>(comm.size()), 1.0);
      (void)co_await simmpi::alltoall(comm, std::move(buf), 1, simmpi::AlltoallAlgo::kPairwise,
                                      msize);
    };
  }
  if (op == "reduce") {
    return [msize](simmpi::Comm& comm) -> sim::Task<void> {
      (void)co_await simmpi::reduce(comm, util::vec(1.0), simmpi::ReduceOp::kSum, 0,
                                    simmpi::ReduceAlgo::kBinomial, msize);
    };
  }
  if (op == "scan") {
    return [msize](simmpi::Comm& comm) -> sim::Task<void> {
      (void)co_await simmpi::scan(comm, util::vec(1.0), simmpi::ReduceOp::kSum,
                                  simmpi::ScanAlgo::kRecursiveDoubling, msize);
    };
  }
  throw std::invalid_argument("unknown --op '" + op + "'");
}

struct Row {
  std::int64_t msize;
  util::Summary summary;
  int valid, invalid;
};

Row run_one(const topology::MachineConfig& machine, const util::Cli& cli, std::int64_t msize) {
  const std::string scheme = cli.get("scheme", "roundtime");
  const mpibench::CollectiveOp op =
      parse_op(cli.get("op", "allreduce"), cli.get("op-algo", ""), msize);
  const int nrep = static_cast<int>(cli.get_int("nrep", 100));
  const std::string sync_label =
      cli.get("sync", "hca3/recompute_intercept/300/skampi_offset/30");

  simmpi::World world(machine, cli.seed(1));
  Row row{msize, {}, 0, 0};
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    mpibench::MeasurementResult m;
    if (scheme == "barrier") {
      m = co_await mpibench::run_barrier_scheme(
          ctx.comm_world(), *clk, op,
          mpibench::BarrierSchemeParams{nrep, parse_barrier(cli.get("barrier", "tree"))});
      // Without a global clock the per-rep "runtime" is the across-rank max.
      if (ctx.rank() == 0) {
        for (const auto& ranks : m.latencies) m.global_runtimes.push_back(util::max(ranks));
      }
    } else {
      auto sync = clocksync::make_sync(sync_label);
      auto g = co_await sync->sync_clocks(ctx.comm_world(), clk);
      if (scheme == "window") {
        mpibench::WindowSchemeParams params;
        params.nrep = nrep;
        params.window = cli.get_double("window-us", 200.0) * 1e-6;
        m = co_await mpibench::run_window_scheme(ctx.comm_world(), *g, op, params);
      } else if (scheme == "roundtime") {
        mpibench::RoundTimeParams params;
        params.max_nrep = nrep;
        params.max_time_slice = cli.get_double("time-slice", 5.0);
        m = co_await mpibench::run_roundtime_scheme(ctx.comm_world(), *g, op, params);
      } else {
        throw std::invalid_argument("unknown --scheme '" + scheme + "'");
      }
    }
    if (ctx.rank() == 0) {
      row.summary = util::summarize(m.global_runtimes);
      row.valid = m.valid_reps();
      row.invalid = m.invalid_reps;
    }
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"csv"});
  try {
    const topology::MachineConfig machine = parse_machine(cli);
    const auto msizes = cli.get("op", "allreduce") == "barrier"
                            ? std::vector<std::int64_t>{8}
                            : parse_msizes(cli.get("msizes", "4,16,64,256,1024"));
    std::cout << "# machine: " << machine.describe() << "\n"
              << "# op: " << cli.get("op", "allreduce") << " scheme: "
              << cli.get("scheme", "roundtime") << " nrep: " << cli.get_int("nrep", 100)
              << "\n\n";
    util::Table table({"msize_B", "valid", "invalid", "min_us", "q25_us", "median_us", "q75_us",
                       "max_us", "mean_us"});
    for (const std::int64_t msize : msizes) {
      const Row row = run_one(machine, cli, msize);
      table.add_row({std::to_string(row.msize), std::to_string(row.valid),
                     std::to_string(row.invalid), util::fmt_us(row.summary.min, 2),
                     util::fmt_us(row.summary.q25, 2), util::fmt_us(row.summary.median, 2),
                     util::fmt_us(row.summary.q75, 2), util::fmt_us(row.summary.max, 2),
                     util::fmt_us(row.summary.mean, 2)});
    }
    if (cli.has("csv")) table.print_csv(std::cout);
    else table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
