// Quickstart: simulate a small cluster, synchronize its clocks with HCA3,
// and check how good the resulting logical global clock is.
//
//   $ ./examples/quickstart [--nodes N] [--cores C] [--algo LABEL]
//
// This walks through the library's core loop:
//   1. describe a machine (topology + network + clock drift),
//   2. run one coroutine per MPI rank inside the discrete-event simulator,
//   3. synchronize clocks with a configurable algorithm,
//   4. validate the global clock with the paper's Check-Global-Clock.
#include <iostream>
#include <stdexcept>

#include "clocksync/accuracy.hpp"
#include "clocksync/factory.hpp"
#include "clocksync/skampi_offset.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcs;
  const util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const int cores = static_cast<int>(cli.get_int("cores", 4));
  const std::string label =
      cli.get("algo", "hca3/recompute_intercept/200/skampi_offset/20");

  // 1. A machine: `testbox` is a mild synthetic cluster; jupiter()/hydra()/
  //    titan() model the paper's Table I systems.
  const topology::MachineConfig machine = topology::testbox(nodes, cores);
  std::cout << "machine: " << machine.describe() << "\n";
  std::cout << "algorithm: " << label << "\n\n";

  // 2-4. One World per experiment; every rank runs this coroutine.
  simmpi::World world(machine, cli.seed(42));
  clocksync::AccuracyResult accuracy;
  sim::Time sync_duration = 0.0;
  const std::vector<int> clients = clocksync::sample_clients(world.size(), 0, 1.0, 1);

  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync(label);
    const sim::Time begin = ctx.sim().now();
    // sync_clocks returns the global clock plus a health report — always
    // consult the report before trusting the clock.
    const clocksync::SyncResult synced =
        co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    if (!synced.report.clean()) {
      throw std::runtime_error("quickstart: sync reported degraded health");
    }
    sync_duration = std::max(sync_duration, ctx.sim().now() - begin);

    // How far apart are the global clocks, now and 10 s from now?
    clocksync::SKaMPIOffset offset_alg(20);
    const auto result = co_await clocksync::check_clock_accuracy(
        ctx.comm_world(), *synced.clock, offset_alg, 10.0, clients);
    if (ctx.rank() == 0) accuracy = result;
  });

  util::Table table({"metric", "value"});
  table.add_row({"ranks", std::to_string(world.size())});
  table.add_row({"sync duration [s]", util::fmt(sync_duration, 4)});
  table.add_row({"max |offset| right after sync [us]", util::fmt_us(accuracy.max_abs_t0, 3)});
  table.add_row({"max |offset| 10 s later [us]", util::fmt_us(accuracy.max_abs_t1, 3)});
  table.print(std::cout);

  std::cout << "\nTry: --algo jk/200/skampi_offset/10   (accurate but O(p) slow)\n"
               "     --algo top/hca3/200/skampi_offset/20/bottom/clockpropagation  (H2HCA)\n";
  return 0;
}
