// Tuning example: pick the fastest MPI_Allreduce implementation for a given
// message size — the PGMPITuneLib use case that motivated the paper.
//
//   $ ./examples/tune_collective [--msize BYTES] [--nodes N]
//
// The point the paper makes (and this example demonstrates): with a
// barrier-based measurement the *winner can change with the barrier
// algorithm*, whereas Round-Time measurements with a global clock give a
// stable ranking.
#include <iostream>

#include "clocksync/factory.hpp"
#include "mpibench/suites.hpp"
#include "simmpi/world.hpp"
#include "topology/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hcs;

double measure_roundtime(const topology::MachineConfig& machine, std::int64_t msize,
                         simmpi::AllreduceAlgo algo, std::uint64_t seed) {
  simmpi::World world(machine, seed);
  double latency = 0;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto sync = clocksync::make_sync("hca3/recompute_intercept/200/skampi_offset/20");
    auto g = co_await sync->sync_clocks(ctx.comm_world(), ctx.base_clock());
    mpibench::RoundTimeParams params;
    params.max_nrep = 100;
    const auto report = co_await mpibench::run_repro_like(
        ctx.comm_world(), *g, mpibench::make_allreduce_op(msize, algo), params);
    if (ctx.rank() == 0) latency = report.reported_latency;
  });
  return latency;
}

double measure_barrier_based(const topology::MachineConfig& machine, std::int64_t msize,
                             simmpi::AllreduceAlgo algo, simmpi::BarrierAlgo barrier,
                             std::uint64_t seed) {
  simmpi::World world(machine, seed);
  double latency = 0;
  world.run_all([&](simmpi::RankCtx& ctx) -> sim::Task<void> {
    auto clk = ctx.base_clock();
    const auto report = co_await mpibench::run_osu_like(
        ctx.comm_world(), *clk, mpibench::make_allreduce_op(msize, algo),
        mpibench::BarrierSchemeParams{100, barrier});
    if (ctx.rank() == 0) latency = report.reported_latency;
  });
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto msize = cli.get_int("msize", 8);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const auto machine = topology::jupiter().with_nodes(nodes);
  std::cout << "Tuning MPI_Allreduce for " << msize << " B on " << machine.describe() << "\n\n";

  const std::vector<simmpi::AllreduceAlgo> candidates = {
      simmpi::AllreduceAlgo::kRecursiveDoubling, simmpi::AllreduceAlgo::kRing,
      simmpi::AllreduceAlgo::kReduceBcast, simmpi::AllreduceAlgo::kRabenseifner};

  util::Table table({"allreduce algorithm", "Round-Time [us]", "barrier(tree) [us]",
                     "barrier(double ring) [us]"});
  simmpi::AllreduceAlgo best = candidates.front();
  double best_latency = 1e9;
  for (const auto algo : candidates) {
    const double rt = measure_roundtime(machine, msize, algo, cli.seed(1));
    const double bt = measure_barrier_based(machine, msize, algo, simmpi::BarrierAlgo::kTree,
                                            cli.seed(1));
    const double br = measure_barrier_based(machine, msize, algo,
                                            simmpi::BarrierAlgo::kDoubleRing, cli.seed(1));
    table.add_row({to_string(algo), util::fmt(rt * 1e6, 2), util::fmt(bt * 1e6, 2),
                   util::fmt(br * 1e6, 2)});
    if (rt < best_latency) {
      best_latency = rt;
      best = algo;
    }
  }
  table.print(std::cout);
  std::cout << "\nRound-Time winner: " << to_string(best) << " at "
            << util::fmt(best_latency * 1e6, 2) << " us\n"
            << "Note how the barrier-based columns distort the numbers (and can distort the "
               "ranking) for small payloads.\n";
  return 0;
}
